"""Replay the frozen golden vectors (see tests/ckks/golden/).

Every intermediate of a fixed-seed encode -> encrypt -> HMult ->
rescale -> decrypt pipeline must hash to exactly the checked-in value.
A kernel rewrite that changes any output bit anywhere along the chain —
NTT, BConv, modular arithmetic, sampling — fails here even if the
decrypted message still looks numerically fine.  Regeneration is a
deliberate act: ``PYTHONPATH=src python tests/ckks/golden/make_golden.py``.
"""

import json
from pathlib import Path

import numpy as np
import pytest


GOLDEN_PATH = (Path(__file__).resolve().parent / "golden"
               / "golden_small.json")


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def replayed(golden):
    import sys
    sys.path.insert(0, str(GOLDEN_PATH.parent))
    try:
        from make_golden import build_pipeline
    finally:
        sys.path.pop(0)
    return build_pipeline()


class TestGoldenVectors:
    def test_prime_chain_is_stable(self, golden, replayed):
        assert replayed["prime_chain"] == golden["prime_chain"]

    def test_every_stage_hash_matches(self, golden, replayed):
        mismatched = [name for name, digest in golden["stages"].items()
                      if replayed["stages"].get(name) != digest]
        assert not mismatched, (
            f"golden-vector drift at stages {mismatched}: a kernel "
            "change shifted the numerics; if intentional, regenerate "
            "via tests/ckks/golden/make_golden.py and explain why in "
            "the commit message")

    def test_no_stage_disappeared(self, golden, replayed):
        assert set(replayed["stages"]) == set(golden["stages"])

    def test_decrypted_message_matches_frozen_values(self, golden,
                                                     replayed):
        for key in ("real", "imag"):
            assert np.array_equal(
                np.array(replayed["decrypted_message"][key]),
                np.array(golden["decrypted_message"][key]))

    def test_pipeline_is_numerically_sound(self, golden):
        """The frozen ciphertext really decrypts to z0 * z1."""
        got = (np.array(golden["decrypted_message"]["real"])
               + 1j * np.array(golden["decrypted_message"]["imag"]))
        want = (np.array(golden["expected_product"]["real"])
                + 1j * np.array(golden["expected_product"]["imag"]))
        assert np.max(np.abs(got - want)) < 1e-4
