"""Tests for NTT-friendly prime generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.primes import is_prime, ntt_friendly_primes, primitive_root_2n


KNOWN_PRIMES = [2, 3, 5, 7, 11, 13, 97, 65537, (1 << 31) - 1,
                1125899906844161]
KNOWN_COMPOSITES = [0, 1, 4, 9, 15, 91, 65535, (1 << 32) + 1,
                    3825123056546413051 * 3]


class TestIsPrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_known_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_prime(n)

    def test_carmichael_numbers(self):
        # Classic Fermat pseudoprimes must be rejected.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_against_trial_division(self, n):
        reference = all(n % d for d in range(2, int(n ** 0.5) + 1))
        assert is_prime(n) == (reference and n >= 2)


class TestNttFriendlyPrimes:
    def test_congruence(self):
        n = 1 << 10
        for p in ntt_friendly_primes(45, 5, n):
            assert p % (2 * n) == 1
            assert is_prime(p)

    def test_count_and_distinct(self):
        primes = ntt_friendly_primes(40, 8, 1 << 8)
        assert len(primes) == 8
        assert len(set(primes)) == 8

    def test_near_target_size(self):
        bit = 50
        for p in ntt_friendly_primes(bit, 6, 1 << 9):
            assert abs(p - (1 << bit)) < (1 << (bit - 6))

    def test_exclusion(self):
        n = 1 << 8
        first = ntt_friendly_primes(40, 3, n)
        second = ntt_friendly_primes(40, 3, n, exclude=set(first))
        assert not set(first) & set(second)

    def test_zero_count(self):
        assert ntt_friendly_primes(40, 0, 1 << 8) == []

    def test_alternates_above_below(self):
        primes = ntt_friendly_primes(45, 6, 1 << 8)
        center = 1 << 45
        above = sum(1 for p in primes if p > center)
        below = sum(1 for p in primes if p < center)
        assert above >= 1 and below >= 1


class TestPrimitiveRoot:
    @pytest.mark.parametrize("n", [4, 64, 1 << 10])
    def test_order_exactly_2n(self, n):
        q = ntt_friendly_primes(45, 1, n)[0]
        psi = primitive_root_2n(q, n)
        assert pow(psi, n, q) == q - 1
        assert pow(psi, 2 * n, q) == 1

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            primitive_root_2n(97, 1 << 10)
