"""Unit + property tests for the 128-bit modular arithmetic backend."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.modmath import (
    MODULUS_LIMIT,
    Modulus,
    add_mod,
    barrett_reduce128,
    from_signed,
    inv_mod,
    mul128,
    mul_mod,
    mul_mod_shoup,
    mul_mod_shoup_lazy,
    mulhi64,
    neg_mod,
    pow_mod,
    shoup_precompute,
    sub_mod,
    to_signed,
)

MODULI = [17, 257, (1 << 30) + 3, (1 << 45) + 59, (1 << 59) + 55,
          (1 << 61) + 15]


def _arrays(rng, q, size=257):
    a = rng.integers(0, q, size=size, dtype=np.uint64)
    b = rng.integers(0, q, size=size, dtype=np.uint64)
    return a, b


class TestModulus:
    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            Modulus(MODULUS_LIMIT)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            Modulus(2)

    def test_mu_matches_python(self):
        m = Modulus((1 << 50) + 5)
        mu = (int(m.mu_hi) << 64) | int(m.mu_lo)
        assert mu == (1 << 128) // m.value

    def test_int_conversion(self):
        assert int(Modulus(97)) == 97


class TestMul128:
    def test_known_product(self):
        hi, lo = mul128(np.array([1 << 40], dtype=np.uint64),
                        np.array([1 << 40], dtype=np.uint64))
        assert int(hi[0]) == 1 << 16
        assert int(lo[0]) == 0

    def test_against_python(self, rng):
        a = rng.integers(0, 1 << 63, size=500, dtype=np.uint64)
        b = rng.integers(0, 1 << 63, size=500, dtype=np.uint64)
        hi, lo = mul128(a, b)
        for x, y, h, l in zip(a, b, hi, lo):
            full = int(x) * int(y)
            assert int(h) == full >> 64
            assert int(l) == full & ((1 << 64) - 1)

    def test_mulhi64(self, rng):
        a = rng.integers(0, 1 << 62, size=100, dtype=np.uint64)
        b = rng.integers(0, 1 << 62, size=100, dtype=np.uint64)
        hi = mulhi64(a, b)
        for x, y, h in zip(a, b, hi):
            assert int(h) == (int(x) * int(y)) >> 64


class TestMulMod:
    @pytest.mark.parametrize("q", MODULI)
    def test_matches_python(self, q, rng):
        m = Modulus(q)
        a, b = _arrays(rng, q)
        got = mul_mod(a, b, m)
        want = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert [int(v) for v in got] == want

    @pytest.mark.parametrize("q", MODULI)
    def test_shoup_matches_barrett(self, q, rng):
        m = Modulus(q)
        a, b = _arrays(rng, q)
        ws = shoup_precompute(b, m)
        assert np.array_equal(mul_mod(a, b, m), mul_mod_shoup(a, b, ws, m))

    def test_edge_values(self):
        q = (1 << 59) + 55
        m = Modulus(q)
        edge = np.array([0, 1, q - 1, q // 2, q // 2 + 1], dtype=np.uint64)
        got = mul_mod(edge, edge, m)
        want = [(int(x) ** 2) % q for x in edge]
        assert [int(v) for v in got] == want

    def test_broadcasting(self, rng):
        q = (1 << 45) + 59
        m = Modulus(q)
        a = rng.integers(0, q, size=(4, 8), dtype=np.uint64)
        s = np.uint64(12345)
        got = mul_mod(a, np.broadcast_to(s, a.shape), m)
        assert got.shape == (4, 8)
        assert int(got[0, 0]) == (int(a[0, 0]) * 12345) % q


class TestAddSubNeg:
    @pytest.mark.parametrize("q", MODULI)
    def test_add(self, q, rng):
        m = Modulus(q)
        a, b = _arrays(rng, q)
        got = add_mod(a, b, m)
        assert [int(v) for v in got] == [(int(x) + int(y)) % q
                                         for x, y in zip(a, b)]

    @pytest.mark.parametrize("q", MODULI)
    def test_sub(self, q, rng):
        m = Modulus(q)
        a, b = _arrays(rng, q)
        got = sub_mod(a, b, m)
        assert [int(v) for v in got] == [(int(x) - int(y)) % q
                                         for x, y in zip(a, b)]

    def test_neg_roundtrip(self, rng):
        q = (1 << 50) + 5
        m = Modulus(q)
        a, _ = _arrays(rng, q)
        assert np.array_equal(neg_mod(neg_mod(a, m), m), a)

    def test_neg_of_zero(self):
        m = Modulus(97)
        assert int(neg_mod(np.array([0], dtype=np.uint64), m)[0]) == 0


class TestScalarHelpers:
    def test_pow_mod(self):
        assert pow_mod(3, 20, 97) == pow(3, 20, 97)

    def test_inv_mod(self):
        q = (1 << 45) + 59
        for a in (2, 3, 12345, q - 1):
            assert (inv_mod(a, q) * a) % q == 1

    def test_inv_mod_non_invertible(self):
        with pytest.raises(ValueError):
            inv_mod(5, 25)

    def test_signed_roundtrip(self, rng):
        q = (1 << 50) + 5
        m = Modulus(q)
        a = rng.integers(0, q, size=100, dtype=np.uint64)
        signed = to_signed(a, m)
        assert np.array_equal(from_signed(signed, m), a)

    def test_to_signed_centering(self):
        q = 101
        m = Modulus(q)
        vals = np.array([0, 1, 50, 51, 100], dtype=np.uint64)
        assert list(to_signed(vals, m)) == [0, 1, 50, -50, -1]


@st.composite
def modulus_and_operands(draw):
    q = draw(st.integers(min_value=3, max_value=MODULUS_LIMIT - 1))
    if q % 2 == 0:
        q += 1
    a = draw(st.integers(min_value=0, max_value=q - 1))
    b = draw(st.integers(min_value=0, max_value=q - 1))
    return q, a, b


class TestHypothesis:
    @given(modulus_and_operands())
    @settings(max_examples=300, deadline=None)
    def test_mul_mod_property(self, qab):
        q, a, b = qab
        m = Modulus(q)
        got = mul_mod(np.array([a], dtype=np.uint64),
                      np.array([b], dtype=np.uint64), m)
        assert int(got[0]) == (a * b) % q

    @given(modulus_and_operands())
    @settings(max_examples=200, deadline=None)
    def test_shoup_property(self, qab):
        q, a, b = qab
        m = Modulus(q)
        w = np.array([b], dtype=np.uint64)
        got = mul_mod_shoup(np.array([a], dtype=np.uint64), w,
                            shoup_precompute(w, m), m)
        assert int(got[0]) == (a * b) % q

    @given(modulus_and_operands())
    @settings(max_examples=200, deadline=None)
    def test_barrett_reduce_full_square(self, qab):
        q, a, _ = qab
        m = Modulus(q)
        arr = np.array([a], dtype=np.uint64)
        hi, lo = mul128(arr, arr)
        assert int(barrett_reduce128(hi, lo, m)[0]) == (a * a) % q

    @given(modulus_and_operands())
    @settings(max_examples=200, deadline=None)
    def test_add_sub_inverse(self, qab):
        q, a, b = qab
        m = Modulus(q)
        arr_a = np.array([a], dtype=np.uint64)
        arr_b = np.array([b], dtype=np.uint64)
        assert np.array_equal(sub_mod(add_mod(arr_a, arr_b, m), arr_b, m),
                              arr_a)


# --- wide-modulus sweep -----------------------------------------------------
#
# The Barrett and Shoup quotient estimates are tightest when the modulus
# approaches the 2**62 limit: the estimate can fall up to 2 below the true
# quotient, and the number of conditional corrections actually *taken*
# peaks for 59..62-bit moduli with operands hugging m - 1.  The uniform
# strategy above almost never lands there, so this sweep pins the modulus
# to the top widths and biases operands toward the correction-heavy edges.

_WIDE_EDGE_MODULI = [
    MODULUS_LIMIT - 1,            # 62-bit, largest admissible (odd)
    MODULUS_LIMIT - 3,
    (1 << 61) + 1, (1 << 61) - 1,  # straddle 2**61
    (1 << 60) + 1, (1 << 60) - 1,
    (1 << 59) + 1, (1 << 59) - 1,
    (1 << 59) + 55, (1 << 61) + 15,  # NTT-friendly widths used elsewhere
]


@st.composite
def wide_modulus(draw):
    """An odd modulus with bit length in 59..62 (limit is 2**62)."""
    edge = draw(st.booleans())
    if edge:
        q = draw(st.sampled_from(_WIDE_EDGE_MODULI))
    else:
        bits = draw(st.integers(min_value=59, max_value=62))
        hi = min(1 << bits, MODULUS_LIMIT) - 1
        q = draw(st.integers(min_value=1 << (bits - 1), max_value=hi))
    if q % 2 == 0:
        q -= 1
    return q


def _residue(draw, q):
    """Residue < q biased toward the correction-heavy edges."""
    return draw(st.one_of(
        st.sampled_from([0, 1, q - 1, q - 2, q // 2, q // 2 + 1]),
        st.integers(min_value=0, max_value=q - 1)))


@st.composite
def wide_modulus_and_residues(draw):
    q = draw(wide_modulus())
    return q, _residue(draw, q), _residue(draw, q)


@st.composite
def wide_modulus_and_u128(draw):
    """A wide modulus plus an arbitrary 128-bit (hi, lo) input."""
    q = draw(wide_modulus())
    word = st.one_of(
        st.sampled_from([0, 1, (1 << 64) - 1, (1 << 64) - 2, q, q - 1]),
        st.integers(min_value=0, max_value=(1 << 64) - 1))
    return q, draw(word), draw(word)


class TestWideModulusSweep:
    @given(wide_modulus_and_residues())
    @settings(max_examples=400, deadline=None)
    def test_mul_mod_at_wide_moduli(self, qab):
        q, a, b = qab
        m = Modulus(q)
        got = mul_mod(np.array([a], dtype=np.uint64),
                      np.array([b], dtype=np.uint64), m)
        assert int(got[0]) == (a * b) % q

    @given(wide_modulus_and_u128())
    @settings(max_examples=400, deadline=None)
    def test_barrett_reduce128_full_range(self, qhl):
        # barrett_reduce128 is documented correct for *any* x < 2**128,
        # not just products of residues — exercise that full contract.
        q, hi, lo = qhl
        m = Modulus(q)
        got = barrett_reduce128(np.array([hi], dtype=np.uint64),
                                np.array([lo], dtype=np.uint64), m)
        assert int(got[0]) == ((hi << 64) | lo) % q

    @given(wide_modulus_and_residues())
    @settings(max_examples=400, deadline=None)
    def test_shoup_precompute_exact(self, qab):
        q, w, _ = qab
        m = Modulus(q)
        ws = shoup_precompute(np.array([w], dtype=np.uint64), m)
        assert int(ws[0]) == (w << 64) // q

    @given(wide_modulus_and_residues())
    @settings(max_examples=400, deadline=None)
    def test_shoup_multiply_at_wide_moduli(self, qab):
        q, a, w = qab
        m = Modulus(q)
        w_arr = np.array([w], dtype=np.uint64)
        ws = shoup_precompute(w_arr, m)
        got = mul_mod_shoup(np.array([a], dtype=np.uint64), w_arr, ws, m)
        assert int(got[0]) == (a * w) % q

    @given(wide_modulus_and_u128())
    @settings(max_examples=400, deadline=None)
    def test_shoup_lazy_bound_for_any_word(self, qhl):
        # The lazy variant admits any a < 2**64 (not just residues) and
        # promises a representative below 2m congruent to a*w.
        q, a, _ = qhl
        m = Modulus(q)
        w = a % q
        w_arr = np.array([w], dtype=np.uint64)
        ws = shoup_precompute(w_arr, m)
        r = int(mul_mod_shoup_lazy(np.array([a], dtype=np.uint64),
                                   w_arr, ws, m)[0])
        assert r < 2 * q
        assert r % q == (a * w) % q
