"""End-to-end tests for every primitive HE op (Section 2.3)."""

import numpy as np
import pytest

from tests.conftest import encrypt_message

SCALE = 2.0 ** 40


@pytest.fixture()
def pair(small_keys, small_encoder, rng, small_params):
    n = small_params.slots_max
    z0 = rng.normal(size=n) + 1j * rng.normal(size=n)
    z1 = rng.normal(size=n) + 1j * rng.normal(size=n)
    ct0 = encrypt_message(small_keys, small_encoder, z0, SCALE)
    ct1 = encrypt_message(small_keys, small_encoder, z1, SCALE)
    return z0, z1, ct0, ct1


def _decrypted(ev, keys, ct):
    return ev.decrypt_to_message(ct, keys.secret)


class TestEncryptDecrypt:
    def test_roundtrip(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys, ct0)
        assert np.max(np.abs(got - z0)) < 1e-7

    def test_fresh_ct_level(self, pair, small_params):
        _, _, ct0, _ = pair
        assert ct0.level == small_params.l

    def test_noise_is_small_but_nonzero(self, small_evaluator, small_keys,
                                        pair):
        z0, _, ct0, _ = pair
        err = np.abs(_decrypted(small_evaluator, small_keys, ct0) - z0)
        assert 0 < np.max(err) < 1e-7


class TestAdditive:
    def test_add(self, small_evaluator, small_keys, pair):
        z0, z1, ct0, ct1 = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.add(ct0, ct1))
        assert np.max(np.abs(got - (z0 + z1))) < 1e-7

    def test_sub(self, small_evaluator, small_keys, pair):
        z0, z1, ct0, ct1 = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.sub(ct0, ct1))
        assert np.max(np.abs(got - (z0 - z1))) < 1e-7

    def test_negate(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.negate(ct0))
        assert np.max(np.abs(got + z0)) < 1e-7

    def test_add_is_commutative(self, small_evaluator, small_keys, pair):
        _, _, ct0, ct1 = pair
        a = _decrypted(small_evaluator, small_keys,
                       small_evaluator.add(ct0, ct1))
        b = _decrypted(small_evaluator, small_keys,
                       small_evaluator.add(ct1, ct0))
        assert np.max(np.abs(a - b)) < 1e-12

    def test_add_plain(self, small_evaluator, small_keys, small_encoder,
                       pair):
        z0, z1, ct0, _ = pair
        pt = small_encoder.encode(z1, SCALE)
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.add_plain(ct0, pt))
        assert np.max(np.abs(got - (z0 + z1))) < 1e-7

    def test_add_scalar(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.add_scalar(ct0, 2.5))
        assert np.max(np.abs(got - (z0 + 2.5))) < 1e-7

    def test_scale_mismatch_rejected(self, small_evaluator, pair):
        _, _, ct0, ct1 = pair
        bad = ct1.clone()
        bad.scale = ct1.scale * 2
        with pytest.raises(ValueError):
            small_evaluator.add(ct0, bad)


class TestMultiplicative:
    def test_hmult(self, small_evaluator, small_keys, pair):
        z0, z1, ct0, ct1 = pair
        prod = small_evaluator.multiply(ct0, ct1)
        got = _decrypted(small_evaluator, small_keys, prod)
        assert np.max(np.abs(got - z0 * z1)) < 1e-6
        assert prod.level == ct0.level - 1

    def test_square(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.square(ct0))
        assert np.max(np.abs(got - z0 ** 2)) < 1e-6

    def test_mult_without_rescale(self, small_evaluator, small_keys, pair):
        z0, z1, ct0, ct1 = pair
        prod = small_evaluator.multiply(ct0, ct1, rescale=False)
        assert prod.level == ct0.level
        assert prod.scale == pytest.approx(SCALE * SCALE)
        got = _decrypted(small_evaluator, small_keys, prod)
        assert np.max(np.abs(got - z0 * z1)) < 1e-6

    def test_multiply_plain(self, small_evaluator, small_keys,
                            small_encoder, pair):
        z0, z1, ct0, _ = pair
        pt = small_encoder.encode(z1, SCALE)
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.multiply_plain(ct0, pt,
                                                        rescale=True))
        assert np.max(np.abs(got - z0 * z1)) < 1e-6

    def test_multiply_scalar_real(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.multiply_scalar(ct0, 0.125,
                                                         rescale=True))
        assert np.max(np.abs(got - 0.125 * z0)) < 1e-6

    def test_multiply_scalar_complex(self, small_evaluator, small_keys,
                                     pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.multiply_scalar(ct0, 1j,
                                                         rescale=True))
        assert np.max(np.abs(got - 1j * z0)) < 1e-6

    def test_multiply_scalar_target_scale(self, small_evaluator,
                                          small_keys, pair):
        """target_scale snaps the output scale exactly (the EvalMod
        renormalization trick) while keeping values correct."""
        z0, _, ct0, _ = pair
        drifted = ct0.clone()
        drifted.scale = ct0.scale * 1.0003  # simulate accumulated drift
        out = small_evaluator.multiply_scalar(
            drifted, 0.5, rescale=True, target_scale=2.0 ** 40)
        assert out.scale == 2.0 ** 40

    def test_target_scale_requires_rescale(self, small_evaluator, pair):
        _, _, ct0, _ = pair
        with pytest.raises(ValueError):
            small_evaluator.multiply_scalar(ct0, 0.5, rescale=False,
                                            target_scale=2.0 ** 40)

    def test_multiply_integer(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        tripled = small_evaluator.multiply_integer(ct0, 3)
        got = _decrypted(small_evaluator, small_keys, tripled)
        assert np.max(np.abs(got - 3 * z0)) < 1e-6
        assert tripled.level == ct0.level

    def test_depth_chain(self, small_evaluator, small_keys, pair):
        z0, z1, ct0, ct1 = pair
        ct = ct0
        want = z0.copy()
        for _ in range(4):
            ct = small_evaluator.multiply(ct, ct1)
            want = want * z1
        got = _decrypted(small_evaluator, small_keys, ct)
        assert np.max(np.abs(got - want)) < 1e-4

    def test_missing_relin_key(self, small_ring, pair):
        from repro.ckks.evaluator import Evaluator
        bare = Evaluator(small_ring)
        _, _, ct0, ct1 = pair
        with pytest.raises(ValueError):
            bare.multiply(ct0, ct1)


class TestRescaleAndLevels:
    def test_rescale_divides_scale(self, small_evaluator, pair,
                                   small_ring):
        _, _, ct0, ct1 = pair
        prod = small_evaluator.multiply(ct0, ct1, rescale=False)
        scaled = small_evaluator.rescale(prod)
        dropped = small_ring.q_primes[prod.level].value
        assert scaled.scale == pytest.approx(prod.scale / dropped)

    def test_rescale_at_level_zero_fails(self, small_evaluator, pair):
        _, _, ct0, _ = pair
        low = small_evaluator.drop_to_level(ct0, 0)
        with pytest.raises(ValueError):
            small_evaluator.rescale(low)

    def test_drop_to_level_preserves_message(self, small_evaluator,
                                             small_keys, pair):
        z0, _, ct0, _ = pair
        low = small_evaluator.drop_to_level(ct0, 1)
        got = _decrypted(small_evaluator, small_keys, low)
        assert np.max(np.abs(got - z0)) < 1e-7

    def test_drop_cannot_raise(self, small_evaluator, pair):
        _, _, ct0, _ = pair
        low = small_evaluator.drop_to_level(ct0, 1)
        with pytest.raises(ValueError):
            small_evaluator.drop_to_level(low, 3)

    def test_align_pair(self, small_evaluator, pair):
        _, _, ct0, ct1 = pair
        low = small_evaluator.drop_to_level(ct1, 2)
        a, b = small_evaluator.align_pair(ct0, low)
        assert a.level == b.level == 2

    def test_ops_across_levels(self, small_evaluator, small_keys, pair):
        z0, z1, ct0, ct1 = pair
        low = small_evaluator.drop_to_level(ct1, 2)
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.add(ct0, low))
        assert np.max(np.abs(got - (z0 + z1))) < 1e-7


class TestRotation:
    @pytest.mark.parametrize("amount", [1, 2, 3, 4, 8, 16])
    def test_rotate(self, small_evaluator, small_keys, pair, amount):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.rotate(ct0, amount))
        assert np.max(np.abs(got - np.roll(z0, -amount))) < 1e-6

    def test_rotate_zero_is_identity(self, small_evaluator, small_keys,
                                     pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.rotate(ct0, 0))
        assert np.max(np.abs(got - z0)) < 1e-7

    def test_rotate_full_cycle(self, small_evaluator, small_keys, pair,
                               small_params):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.rotate(ct0,
                                                small_params.slots_max))
        assert np.max(np.abs(got - z0)) < 1e-7

    def test_missing_key(self, small_evaluator, pair):
        _, _, ct0, _ = pair
        with pytest.raises(ValueError):
            small_evaluator.rotate(ct0, 7)

    def test_rotate_composes(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        double = small_evaluator.rotate(
            small_evaluator.rotate(ct0, 1), 2)
        got = _decrypted(small_evaluator, small_keys, double)
        assert np.max(np.abs(got - np.roll(z0, -3))) < 1e-6

    def test_conjugate(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        got = _decrypted(small_evaluator, small_keys,
                         small_evaluator.conjugate(ct0))
        assert np.max(np.abs(got - np.conj(z0))) < 1e-6

    def test_conjugate_involution(self, small_evaluator, small_keys, pair):
        z0, _, ct0, _ = pair
        twice = small_evaluator.conjugate(small_evaluator.conjugate(ct0))
        got = _decrypted(small_evaluator, small_keys, twice)
        assert np.max(np.abs(got - z0)) < 1e-6


class TestHomomorphismProperties:
    """Algebraic identities that must hold on ciphertexts."""

    def test_distributivity(self, small_evaluator, small_keys, pair):
        z0, z1, ct0, ct1 = pair
        lhs = small_evaluator.multiply(small_evaluator.add(ct0, ct1), ct0)
        rhs = small_evaluator.add(small_evaluator.multiply(ct0, ct0),
                                  small_evaluator.multiply(ct1, ct0))
        a = _decrypted(small_evaluator, small_keys, lhs)
        b = _decrypted(small_evaluator, small_keys, rhs)
        assert np.max(np.abs(a - b)) < 1e-5
        assert np.max(np.abs(a - (z0 + z1) * z0)) < 1e-5

    def test_rotation_is_homomorphic_over_mult(self, small_evaluator,
                                               small_keys, pair):
        z0, z1, ct0, ct1 = pair
        rot_prod = small_evaluator.rotate(
            small_evaluator.multiply(ct0, ct1), 2)
        prod_rot = small_evaluator.multiply(
            small_evaluator.rotate(ct0, 2), small_evaluator.rotate(ct1, 2))
        a = _decrypted(small_evaluator, small_keys, rot_prod)
        b = _decrypted(small_evaluator, small_keys, prod_rot)
        assert np.max(np.abs(a - b)) < 1e-5
