"""Tests for the canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.encoder import Encoder, embed_to_slots, slots_to_coeffs


class TestEmbeddingMaps:
    @pytest.mark.parametrize("n", [8, 32, 256])
    def test_float_roundtrip(self, n, rng):
        z = rng.normal(size=n // 2) + 1j * rng.normal(size=n // 2)
        back = embed_to_slots(slots_to_coeffs(z, n))
        assert np.max(np.abs(back - z)) < 1e-9

    def test_coeffs_are_real(self, rng):
        z = rng.normal(size=16) + 1j * rng.normal(size=16)
        coeffs = slots_to_coeffs(z, 32)
        assert coeffs.dtype == np.float64

    def test_constant_message(self):
        """A constant message encodes as a constant polynomial."""
        coeffs = slots_to_coeffs(np.full(8, 2.5 + 0j), 16)
        assert coeffs[0] == pytest.approx(2.5)
        assert np.max(np.abs(coeffs[1:])) < 1e-12

    def test_embedding_is_linear(self, rng):
        c1 = rng.normal(size=64)
        c2 = rng.normal(size=64)
        lhs = embed_to_slots(c1 + 2.0 * c2)
        rhs = embed_to_slots(c1) + 2.0 * embed_to_slots(c2)
        assert np.max(np.abs(lhs - rhs)) < 1e-9

    def test_x_pow_half_n_is_i(self):
        """X^(N/2) evaluates to +i in every slot (used by EvalMod)."""
        n = 64
        coeffs = np.zeros(n)
        coeffs[n // 2] = 1.0
        slots = embed_to_slots(coeffs)
        assert np.max(np.abs(slots - 1j)) < 1e-9


class TestEncoderRoundtrip:
    def test_full_packing(self, small_encoder, rng, small_params):
        n_slots = small_params.slots_max
        z = rng.normal(size=n_slots) + 1j * rng.normal(size=n_slots)
        pt = small_encoder.encode(z, 2.0 ** 40)
        got = small_encoder.decode(pt, n_slots)
        assert np.max(np.abs(got - z)) < 1e-8

    @pytest.mark.parametrize("n_slots", [1, 4, 32])
    def test_sparse_packing(self, small_encoder, rng, n_slots):
        z = rng.normal(size=n_slots) + 1j * rng.normal(size=n_slots)
        pt = small_encoder.encode(z, 2.0 ** 40)
        got = small_encoder.decode(pt, n_slots)
        assert np.max(np.abs(got - z)) < 1e-8

    def test_sparse_replicates(self, small_encoder, rng, small_params):
        """Sparse packing replicates the message across all slots."""
        z = rng.normal(size=4) + 1j * rng.normal(size=4)
        pt = small_encoder.encode(z, 2.0 ** 40)
        full = small_encoder.decode(pt, small_params.slots_max)
        replicas = small_params.slots_max // 4
        expected = np.tile(z, replicas)
        assert np.max(np.abs(full - expected)) < 1e-8

    def test_rejects_bad_slot_count(self, small_encoder):
        with pytest.raises(ValueError):
            small_encoder.encode(np.zeros(3), 2.0 ** 40)

    def test_rejects_oversized(self, small_encoder, small_params):
        with pytest.raises(ValueError):
            small_encoder.encode(np.zeros(small_params.n), 2.0 ** 40)

    def test_level_selects_base(self, small_encoder):
        pt = small_encoder.encode(np.ones(4), 2.0 ** 40, level=2)
        assert pt.level == 2

    def test_precision_scales_with_delta(self, small_encoder, rng):
        z = rng.normal(size=8)
        coarse = small_encoder.decode(small_encoder.encode(z, 2.0 ** 20), 8)
        fine = small_encoder.decode(small_encoder.encode(z, 2.0 ** 40), 8)
        assert np.max(np.abs(fine - z)) < np.max(np.abs(coarse - z))


class TestScalarEncoding:
    def test_real_scalar(self, small_encoder, small_ring, small_params):
        pt = small_encoder.encode_scalar(3.25, 2.0 ** 40,
                                         small_ring.base_q(2))
        got = small_encoder.decode(pt, small_params.slots_max)
        assert np.max(np.abs(got - 3.25)) < 1e-9

    def test_complex_scalar(self, small_encoder, small_ring,
                            small_params):
        pt = small_encoder.encode_scalar(1.0 + 2.0j, 2.0 ** 40,
                                         small_ring.base_q(2))
        got = small_encoder.decode(pt, small_params.slots_max)
        assert np.max(np.abs(got - (1.0 + 2.0j))) < 1e-8

    def test_negative_scalar(self, small_encoder, small_ring):
        pt = small_encoder.encode_scalar(-7.5, 2.0 ** 40,
                                         small_ring.base_q(1))
        got = small_encoder.decode(pt, 4)
        assert np.max(np.abs(got + 7.5)) < 1e-9


@given(st.lists(st.floats(min_value=-10, max_value=10,
                          allow_nan=False, allow_infinity=False),
                min_size=8, max_size=8))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(values):
    """encode/decode stays within quantization error for any message."""
    n = 32
    z = np.array(values[:n // 2] + [0.0] * max(0, n // 2 - len(values)))
    back = embed_to_slots(slots_to_coeffs(z.astype(complex), n))
    assert np.max(np.abs(back - z)) < 1e-8
