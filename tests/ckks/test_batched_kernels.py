"""Bit-identity cross-checks: limb-batched kernels vs scalar references.

The limb-batched engine (``ModulusVector`` modmath, ``BatchedNttContext``,
broadcasted BConv) must produce exactly the same ``uint64`` residues as
the retained per-limb reference paths — not merely congruent values.
These tests drive both paths on randomized inputs and assert
``np.array_equal``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.modmath import (
    Modulus,
    ModulusVector,
    add_mod,
    barrett_reduce128,
    mul128,
    mul_mod,
    mul_mod_shoup,
    neg_mod,
    scalar_columns,
    shoup_precompute,
    sub_mod,
    sum128,
)
from repro.ckks.ntt import NttContext, batched_ntt_context
from repro.ckks.params import CkksParams, RingContext
from repro.ckks.primes import ntt_friendly_primes
from repro.ckks.rns import (
    RnsPolynomial,
    _base_convert_reference,
    base_convert,
    base_modulus_vector,
)

#: Deliberately mixed-width moduli (one per row) to exercise broadcasting.
MIXED_MODULI = [17, 257, (1 << 30) + 3, (1 << 45) + 59, (1 << 59) + 55,
                (1 << 61) + 15]


@pytest.fixture(scope="module")
def mixed_mv():
    return ModulusVector([Modulus(q) for q in MIXED_MODULI])


def _rows(rng, n=173):
    """Random canonical residue matrix over MIXED_MODULI."""
    return np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                     for q in MIXED_MODULI])


class TestModulusVector:
    def test_column_shapes(self, mixed_mv):
        L = len(MIXED_MODULI)
        assert mixed_mv.u64.shape == (L, 1)
        assert mixed_mv.mu_hi.shape == (L, 1)
        assert mixed_mv.mu_lo.shape == (L, 1)

    def test_expand_is_cached_view(self, mixed_mv):
        e = mixed_mv.expand(2)
        assert e.u64.shape == (len(MIXED_MODULI), 1, 1)
        assert mixed_mv.expand(2) is e
        assert mixed_mv.expand(1) is mixed_mv

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ModulusVector([])

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ops_match_per_row_scalar_path(self, mixed_mv, seed):
        rng = np.random.default_rng(seed)
        a = _rows(rng)
        b = _rows(rng)
        batched = {
            "add": add_mod(a, b, mixed_mv),
            "sub": sub_mod(a, b, mixed_mv),
            "neg": neg_mod(a, mixed_mv),
            "mul": mul_mod(a, b, mixed_mv),
        }
        for i, q in enumerate(MIXED_MODULI):
            m = Modulus(q)
            assert np.array_equal(batched["add"][i], add_mod(a[i], b[i], m))
            assert np.array_equal(batched["sub"][i], sub_mod(a[i], b[i], m))
            assert np.array_equal(batched["neg"][i], neg_mod(a[i], m))
            assert np.array_equal(batched["mul"][i], mul_mod(a[i], b[i], m))

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ops_match_bigint_ground_truth(self, mixed_mv, seed):
        rng = np.random.default_rng(seed)
        a = _rows(rng, n=29)
        b = _rows(rng, n=29)
        got_mul = mul_mod(a, b, mixed_mv)
        got_sub = sub_mod(a, b, mixed_mv)
        for i, q in enumerate(MIXED_MODULI):
            for j in range(a.shape[1]):
                assert int(got_mul[i, j]) == (int(a[i, j]) * int(b[i, j])) % q
                assert int(got_sub[i, j]) == (int(a[i, j]) - int(b[i, j])) % q

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_shoup_matches_bigint(self, mixed_mv, seed):
        rng = np.random.default_rng(seed)
        a = _rows(rng, n=31)
        w = np.stack([rng.integers(0, q, size=31, dtype=np.uint64)
                      for q in MIXED_MODULI])
        w_shoup = shoup_precompute(w, mixed_mv)
        got = mul_mod_shoup(a, w, w_shoup, mixed_mv)
        for i, q in enumerate(MIXED_MODULI):
            for j in range(a.shape[1]):
                assert int(got[i, j]) == (int(a[i, j]) * int(w[i, j])) % q

    def test_out_buffers_are_returned(self, mixed_mv):
        rng = np.random.default_rng(7)
        a = _rows(rng)
        b = _rows(rng)
        out = np.empty_like(a)
        got = add_mod(a, b, mixed_mv, out=out)
        assert got is out
        assert np.array_equal(out, add_mod(a, b, mixed_mv))


class TestLazyAccumulation:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_sum128_exact(self, seed):
        rng = np.random.default_rng(seed)
        hi = rng.integers(0, 1 << 58, size=(5, 9, 13), dtype=np.uint64)
        lo = rng.integers(0, 1 << 64, size=(5, 9, 13), dtype=np.uint64)
        hi_sum, lo_sum = sum128(hi, lo, axis=1)
        for i in range(5):
            for k in range(13):
                total = sum((int(hi[i, j, k]) << 64) | int(lo[i, j, k])
                            for j in range(9))
                assert total < 1 << 128
                assert ((int(hi_sum[i, k]) << 64) | int(lo_sum[i, k])) == total

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_barrett_reduces_lazy_sums(self, mixed_mv, seed):
        """Barrett must stay exact for inputs far above m**2."""
        rng = np.random.default_rng(seed)
        shape = (len(MIXED_MODULI), 17)
        hi = rng.integers(0, 1 << 64, size=shape, dtype=np.uint64)
        lo = rng.integers(0, 1 << 64, size=shape, dtype=np.uint64)
        got = barrett_reduce128(hi, lo, mixed_mv)
        for i, q in enumerate(MIXED_MODULI):
            for j in range(shape[1]):
                x = (int(hi[i, j]) << 64) | int(lo[i, j])
                assert int(got[i, j]) == x % q


class TestBatchedNtt:
    @pytest.mark.parametrize("n", [16, 64, 256, 1024])
    def test_bit_identical_to_per_limb(self, n):
        primes = (ntt_friendly_primes(40, 3, n) +
                  ntt_friendly_primes(50, 2, n) +
                  ntt_friendly_primes(58, 2, n))
        ctxs = tuple(NttContext.create(q, n) for q in primes)
        batched = batched_ntt_context(ctxs)
        rng = np.random.default_rng(n)
        a = np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                      for q in primes])
        fwd = batched.forward(a)
        assert np.array_equal(
            fwd, np.stack([c.forward(a[i]) for i, c in enumerate(ctxs)]))
        inv = batched.inverse(fwd)
        assert np.array_equal(
            inv, np.stack([c.inverse(fwd[i]) for i, c in enumerate(ctxs)]))
        assert np.array_equal(inv, a)

    def test_cache_shared_across_equal_bases(self):
        n = 64
        primes = ntt_friendly_primes(45, 2, n)
        ctxs = tuple(NttContext.create(q, n) for q in primes)
        assert batched_ntt_context(ctxs) is batched_ntt_context(tuple(ctxs))

    def test_input_not_mutated(self):
        n = 64
        q = ntt_friendly_primes(45, 1, n)[0]
        ctx = NttContext.create(q, n)
        batched = batched_ntt_context((ctx,))
        rng = np.random.default_rng(1)
        a = rng.integers(0, q, size=(1, n), dtype=np.uint64)
        before = a.copy()
        batched.forward(a)
        batched.inverse(a)
        assert np.array_equal(a, before)

    def test_shape_validation(self):
        n = 64
        q = ntt_friendly_primes(45, 1, n)[0]
        batched = batched_ntt_context((NttContext.create(q, n),))
        with pytest.raises(ValueError):
            batched.forward(np.zeros((2, n), dtype=np.uint64))


@pytest.fixture(scope="module")
def bconv_ring():
    return RingContext(CkksParams.functional(
        n=1 << 8, l=6, dnum=2, scale_bits=40, q0_bits=50, p_bits=50, h=16))


class TestBatchedBConv:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bit_identical_to_reference(self, bconv_ring, seed):
        ring = bconv_ring
        rng = np.random.default_rng(seed)
        src = ring.base_q(3)
        dst = ring.base_q(6)[4:] + ring.base_p
        residues = np.stack([rng.integers(0, p.value, size=ring.n,
                                          dtype=np.uint64) for p in src])
        poly = RnsPolynomial(src, residues, is_ntt=False)
        got = base_convert(poly, dst)
        ref = _base_convert_reference(poly, dst)
        assert got.base == ref.base
        assert np.array_equal(got.residues, ref.residues)

    def test_single_source_limb(self, bconv_ring):
        ring = bconv_ring
        rng = np.random.default_rng(3)
        src = ring.base_q(0)
        dst = ring.base_p
        residues = rng.integers(0, src[0].value, size=(1, ring.n),
                                dtype=np.uint64)
        poly = RnsPolynomial(src, residues, is_ntt=False)
        assert np.array_equal(
            base_convert(poly, dst).residues,
            _base_convert_reference(poly, dst).residues)


class TestBatchedPolynomialOps:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_mul_scalar_columns_matches_dict_path(self, bconv_ring, seed):
        ring = bconv_ring
        rng = np.random.default_rng(seed)
        base = ring.base_q(4)
        residues = np.stack([rng.integers(0, p.value, size=ring.n,
                                          dtype=np.uint64) for p in base])
        poly = RnsPolynomial(base, residues, is_ntt=True)
        value = int(rng.integers(1, 1 << 40))
        scalars = {p.value: value % p.value for p in base}
        cols, cols_shoup = scalar_columns(
            tuple(scalars[p.value] for p in base),
            tuple(p.value for p in base))
        assert np.array_equal(poly.mul_scalar(scalars).residues,
                              poly.mul_scalar_columns(cols,
                                                      cols_shoup).residues)

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_galois_matches_per_limb_reference(self, bconv_ring, seed):
        ring = bconv_ring
        rng = np.random.default_rng(seed)
        base = ring.base_q(3)
        residues = np.stack([rng.integers(0, p.value, size=ring.n,
                                          dtype=np.uint64) for p in base])
        poly = RnsPolynomial(base, residues, is_ntt=False)
        g = 5
        got = poly.galois(g)
        n = ring.n
        for i, prime in enumerate(base):
            row = np.zeros(n, dtype=np.uint64)
            for j in range(n):
                dest = (j * g) % (2 * n)
                val = int(residues[i, j])
                if dest >= n:
                    dest -= n
                    val = (prime.value - val) % prime.value
                row[dest] = val
            assert np.array_equal(got.residues[i], row)

    def test_moduli_property_is_cached(self, bconv_ring):
        base = bconv_ring.base_q(2)
        p1 = RnsPolynomial.zeros(base, bconv_ring.n)
        p2 = RnsPolynomial.zeros(base, bconv_ring.n)
        assert p1.moduli is p2.moduli
        assert base_modulus_vector(base).values == tuple(
            p.value for p in base)
