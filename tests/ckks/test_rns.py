"""Tests for RNS polynomials, CRT and base conversion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.rns import (
    RnsPolynomial,
    base_convert,
    crt_reconstruct,
    exact_residue_transfer,
)


@pytest.fixture(scope="module")
def base_q3(small_ring_module):
    return small_ring_module.base_q(3)


@pytest.fixture(scope="module")
def small_ring_module(request):
    from repro.ckks.params import CkksParams, RingContext
    return RingContext(CkksParams.functional(
        n=1 << 8, l=6, dnum=2, scale_bits=40, q0_bits=50, p_bits=50, h=16))


def _random_poly(ring, level, rng, is_ntt=False):
    base = ring.base_q(level)
    residues = np.stack([
        rng.integers(0, p.value, size=ring.n, dtype=np.uint64)
        for p in base])
    return RnsPolynomial(base, residues, is_ntt=is_ntt)


class TestConstruction:
    def test_zeros(self, small_ring_module):
        poly = RnsPolynomial.zeros(small_ring_module.base_q(2),
                                   small_ring_module.n)
        assert poly.num_limbs == 3
        assert not poly.residues.any()

    def test_shape_validation(self, small_ring_module):
        base = small_ring_module.base_q(1)
        with pytest.raises(ValueError):
            RnsPolynomial(base, np.zeros((3, small_ring_module.n),
                                         dtype=np.uint64), False)

    def test_dtype_validation(self, small_ring_module):
        base = small_ring_module.base_q(0)
        with pytest.raises(ValueError):
            RnsPolynomial(base, np.zeros((1, small_ring_module.n),
                                         dtype=np.int64), False)

    def test_from_signed_roundtrip(self, small_ring_module, rng):
        coeffs = rng.integers(-2**40, 2**40,
                              size=small_ring_module.n).astype(np.int64)
        poly = RnsPolynomial.from_signed_coeffs(
            coeffs, small_ring_module.base_q(4))
        rec = crt_reconstruct(poly)
        assert all(int(a) == int(b) for a, b in zip(rec, coeffs))

    def test_from_signed_object_dtype(self, small_ring_module):
        coeffs = np.array([(1 << 80) + 7] + [0] * (small_ring_module.n - 1),
                          dtype=object)
        poly = RnsPolynomial.from_signed_coeffs(
            coeffs, small_ring_module.base_q(4))
        rec = crt_reconstruct(poly)
        assert int(rec[0]) == (1 << 80) + 7


class TestArithmetic:
    def test_add_sub_roundtrip(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 3, rng)
        b = _random_poly(small_ring_module, 3, rng)
        assert np.array_equal(a.add(b).sub(b).residues, a.residues)

    def test_neg_involution(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 3, rng)
        assert np.array_equal(a.neg().neg().residues, a.residues)

    def test_mul_requires_ntt(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 2, rng)
        with pytest.raises(ValueError):
            a.mul(a)

    def test_domain_mismatch_rejected(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 2, rng)
        with pytest.raises(ValueError):
            a.add(a.to_ntt())

    def test_base_mismatch_rejected(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 2, rng)
        b = _random_poly(small_ring_module, 3, rng)
        with pytest.raises(ValueError):
            a.add(b)

    def test_mul_int_matches_crt(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 3, rng)
        product = math.prod(p.value for p in a.base)
        scaled = a.mul_int(7)
        ref = (crt_reconstruct(a).astype(object) * 7)
        ref = np.array([((int(x) % product) + product) % product
                        for x in ref], dtype=object)
        got = np.array([(int(x) % product + product) % product
                        for x in crt_reconstruct(scaled)], dtype=object)
        assert np.array_equal(got, ref)

    def test_ntt_roundtrip(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 4, rng)
        assert np.array_equal(a.to_ntt().from_ntt().residues, a.residues)

    def test_ring_product_matches_bigint(self, small_ring_module, rng):
        """NTT-domain limb products == big-int negacyclic product mod Q."""
        n = small_ring_module.n
        coeffs_a = rng.integers(-100, 100, size=n).astype(np.int64)
        coeffs_b = rng.integers(-100, 100, size=n).astype(np.int64)
        base = small_ring_module.base_q(3)
        pa = RnsPolynomial.from_signed_coeffs(coeffs_a, base).to_ntt()
        pb = RnsPolynomial.from_signed_coeffs(coeffs_b, base).to_ntt()
        prod = crt_reconstruct(pa.mul(pb).from_ntt())
        # schoolbook negacyclic product over the integers
        ref = [0] * n
        for i, ai in enumerate(coeffs_a):
            for j, bj in enumerate(coeffs_b):
                k = i + j
                if k >= n:
                    ref[k - n] -= int(ai) * int(bj)
                else:
                    ref[k] += int(ai) * int(bj)
        assert all(int(x) == r for x, r in zip(prod, ref))


class TestRestrict:
    def test_restrict_drops_limbs(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 4, rng)
        low = a.restrict(small_ring_module.base_q(2))
        assert low.num_limbs == 3
        assert np.array_equal(low.residues, a.residues[:3])

    def test_restrict_missing_prime(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 1, rng)
        with pytest.raises(ValueError):
            a.restrict(small_ring_module.base_q(3))


class TestGalois:
    def test_identity(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 2, rng)
        assert np.array_equal(a.galois(1).residues, a.residues)

    def test_ntt_domain_matches_coeff_oracle(self, small_ring_module, rng):
        """NTT-domain galois is the evaluation-point gather of the oracle."""
        a = _random_poly(small_ring_module, 2, rng)
        for g in (5, 13, 2 * small_ring_module.n - 1):
            want = a.galois(g).to_ntt()
            got = a.to_ntt().galois(g)
            assert got.is_ntt
            assert np.array_equal(got.residues, want.residues)

    def test_galois_coeff_oracle_hook(self, small_ring_module, rng):
        """galois_coeff forces the iNTT -> permute -> NTT route."""
        a = _random_poly(small_ring_module, 2, rng).to_ntt()
        assert np.array_equal(a.galois_coeff(5).residues,
                              a.galois(5).residues)

    def test_rejects_even_element(self, small_ring_module, rng):
        a = _random_poly(small_ring_module, 2, rng)
        with pytest.raises(ValueError):
            a.galois(4)

    def test_composition(self, small_ring_module, rng):
        """sigma_a(sigma_b(x)) == sigma_{a*b mod 2N}(x)."""
        n = small_ring_module.n
        a = _random_poly(small_ring_module, 2, rng)
        g1, g2 = 5, 13
        lhs = a.galois(g1).galois(g2)
        rhs = a.galois((g1 * g2) % (2 * n))
        assert np.array_equal(lhs.residues, rhs.residues)

    def test_preserves_big_coeff_permutation(self, small_ring_module):
        """X -> X^g moves coefficient 1 to position g with sign rules."""
        n = small_ring_module.n
        base = small_ring_module.base_q(2)
        coeffs = np.zeros(n, dtype=np.int64)
        coeffs[1] = 1
        poly = RnsPolynomial.from_signed_coeffs(coeffs, base)
        out = crt_reconstruct(poly.galois(5))
        expected = np.zeros(n, dtype=object)
        expected[5] = 1
        assert np.array_equal(out.astype(object), expected)


class TestBaseConvert:
    def test_small_values_exact(self, small_ring_module):
        """Values far below Q_src convert with at most a u*Q_src offset."""
        n = small_ring_module.n
        src = small_ring_module.base_q(3)
        dst = small_ring_module.base_p
        rng = np.random.default_rng(3)
        coeffs = rng.integers(-2**30, 2**30, size=n).astype(np.int64)
        poly = RnsPolynomial.from_signed_coeffs(coeffs, src)
        converted = base_convert(poly, dst)
        q_src = math.prod(p.value for p in src)
        for i, prime in enumerate(dst):
            want = np.array([(int(c) % prime.value) for c in coeffs])
            got = converted.residues[i].astype(object)
            # allowed error: small multiple of Q_src mod p
            diff = (got - want) % prime.value
            allowed = {(u * q_src) % prime.value
                       for u in range(-len(src), len(src) + 1)}
            assert set(int(d) for d in diff) <= allowed

    def test_requires_coeff_domain(self, small_ring_module, rng):
        poly = _random_poly(small_ring_module, 2, rng, is_ntt=True)
        with pytest.raises(ValueError):
            base_convert(poly, small_ring_module.base_p)

    def test_output_base(self, small_ring_module, rng):
        poly = _random_poly(small_ring_module, 2, rng)
        out = base_convert(poly, small_ring_module.base_p)
        assert out.base == small_ring_module.base_p
        assert not out.is_ntt


class TestExactTransfer:
    def test_small_residues(self, small_ring_module, rng):
        src = small_ring_module.q_primes[3]
        dst = small_ring_module.base_q(2)
        residue = rng.integers(0, 1000, size=small_ring_module.n,
                               dtype=np.uint64)
        out = exact_residue_transfer(residue, src, dst)
        for i, prime in enumerate(dst):
            assert np.array_equal(out.residues[i] % np.uint64(prime.value),
                                  residue % np.uint64(prime.value))

    def test_centered_lift(self, small_ring_module):
        """Residues above q/2 transfer as negative values."""
        src = small_ring_module.q_primes[1]
        dst = (small_ring_module.q_primes[0],)
        residue = np.full(small_ring_module.n, src.value - 1,
                          dtype=np.uint64)  # == -1
        out = exact_residue_transfer(residue, src, dst)
        assert int(out.residues[0][0]) == dst[0].value - 1


@given(st.lists(st.integers(min_value=-2**35, max_value=2**35),
                min_size=4, max_size=4))
@settings(max_examples=50, deadline=None)
def test_crt_roundtrip_property(vals):
    """CRT spread/reconstruct is the identity for in-range values."""
    from repro.ckks.params import CkksParams, RingContext
    ring = _hypothesis_ring()
    coeffs = np.array(vals * (ring.n // 4), dtype=np.int64)
    poly = RnsPolynomial.from_signed_coeffs(coeffs, ring.base_q(2))
    assert all(int(a) == int(b)
               for a, b in zip(crt_reconstruct(poly), coeffs))


_RING_CACHE = []


def _hypothesis_ring():
    if not _RING_CACHE:
        from repro.ckks.params import CkksParams, RingContext
        _RING_CACHE.append(RingContext(CkksParams.functional(
            n=1 << 6, l=3, dnum=2, scale_bits=40, q0_bits=45, p_bits=45,
            h=8)))
    return _RING_CACHE[0]
