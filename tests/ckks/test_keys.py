"""Tests for key generation (secret, public, evaluation keys)."""

import numpy as np
import pytest

from repro.ckks.keys import KeyGenerator
from repro.ckks.rns import crt_reconstruct


class TestSecretKey:
    def test_hamming_weight(self, small_ring, small_params):
        kg = KeyGenerator(small_ring, seed=42)
        coeffs = kg._secret_coeffs
        assert np.count_nonzero(coeffs) == small_params.h
        assert set(np.unique(coeffs)) <= {-1, 0, 1}

    def test_secret_over_full_base(self, small_keys, small_ring,
                                   small_params):
        base = small_ring.base_qp(small_params.l)
        assert small_keys.secret.poly.base == base

    def test_restricted_consistency(self, small_keys, small_ring):
        full = small_keys.secret.poly
        restricted = small_keys.secret.restricted(small_ring.base_q(2))
        assert np.array_equal(restricted.residues, full.residues[:3])

    def test_deterministic_with_seed(self, small_ring):
        a = KeyGenerator(small_ring, seed=7)._secret_coeffs
        b = KeyGenerator(small_ring, seed=7)._secret_coeffs
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, small_ring):
        a = KeyGenerator(small_ring, seed=7)._secret_coeffs
        b = KeyGenerator(small_ring, seed=8)._secret_coeffs
        assert not np.array_equal(a, b)


class TestPublicKey:
    def test_pk_relation(self, small_ring, small_params):
        """b - a*s must be a small error polynomial."""
        kg = KeyGenerator(small_ring, seed=5)
        pk = kg.gen_public_key()
        s = kg.secret.restricted(pk.b.base)
        err = pk.b.sub(pk.a.mul(s)).from_ntt()
        coeffs = crt_reconstruct(err).astype(np.float64)
        assert np.max(np.abs(coeffs)) < 64 * small_params.sigma


class TestEvaluationKeys:
    def test_slice_count(self, small_keys, small_params):
        evk = small_keys.gen_relinearization_key()
        assert evk.dnum == small_params.dnum

    def test_slices_over_full_base(self, small_keys, small_ring,
                                   small_params):
        evk = small_keys.gen_relinearization_key()
        full = small_ring.base_qp(small_params.l)
        for b, a in evk.slices:
            assert b.base == full
            assert a.base == full
            assert b.is_ntt and a.is_ntt

    def test_gadget_scalars_structure(self, small_keys, small_ring,
                                      small_params):
        """P*Q_tilde_j: P mod q_i inside block j, 0 elsewhere."""
        blocks = small_ring.decomposition_blocks(small_params.l)
        p_prod = small_ring.p_product
        for start, stop in blocks:
            scalars = small_keys._gadget_scalars((start, stop))
            for i, prime in enumerate(small_ring.base_q(small_params.l)):
                expected = p_prod % prime.value if start <= i < stop else 0
                assert scalars[prime.value] == expected
            for prime in small_ring.base_p:
                assert scalars[prime.value] == 0

    def test_switching_key_requires_full_base(self, small_keys,
                                              small_ring):
        short = small_keys.secret.restricted(small_ring.base_q(2))
        with pytest.raises(ValueError):
            small_keys.gen_switching_key(short)

    def test_rotation_key_galois_element(self, small_keys, small_ring):
        """Rotation key for amount r targets s(X^(5^r))."""
        evk = small_keys.gen_rotation_key(1)
        # decrypt gadget slice 0 on the first block primes: b - a*s should
        # contain P * s(X^5); verify it differs from the identity key.
        relin = small_keys.gen_relinearization_key()
        assert not np.array_equal(evk.slices[0][0].residues,
                                  relin.slices[0][0].residues)

    def test_conjugation_key_distinct(self, small_keys):
        conj = small_keys.gen_conjugation_key()
        rot = small_keys.gen_rotation_key(1)
        assert not np.array_equal(conj.slices[0][0].residues,
                                  rot.slices[0][0].residues)


class TestSymmetricEncryption:
    def test_level_selection(self, small_keys, small_encoder, rng):
        z = rng.normal(size=4)
        pt = small_encoder.encode(z, 2.0 ** 40, level=2)
        ct = small_keys.encrypt_symmetric(pt.poly, pt.scale, 4)
        assert ct.level == 2

    def test_slots_recorded(self, small_keys, small_encoder, rng):
        z = rng.normal(size=8)
        pt = small_encoder.encode(z, 2.0 ** 40)
        ct = small_keys.encrypt_symmetric(pt.poly, pt.scale, 8)
        assert ct.n_slots == 8


class TestEvkDedupe:
    """Identical evks are generated once and shared (PR-3 satellite)."""

    def test_rotation_key_cached_by_amount(self, small_ring):
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        assert kg.gen_rotation_key(2) is kg.gen_rotation_key(2)

    def test_relinearization_key_cached(self, small_ring):
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        assert kg.gen_relinearization_key() is kg.gen_relinearization_key()

    def test_conjugation_and_rotation_share_galois_cache(self, small_ring):
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        conj = kg.gen_conjugation_key()
        assert kg.gen_galois_key(2 * small_ring.n - 1) is conj

    def test_ensure_rotation_keys_unions_and_skips_existing(
            self, small_ring):
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        ev = Evaluator(small_ring)
        first = kg.ensure_rotation_keys(ev, [1, 2, 0, 2])
        assert set(first) == {1, 2}  # amount 0 skipped, dupes folded
        existing = ev.rotation_keys[1]
        kg.ensure_rotation_keys(ev, {1, 3})
        assert ev.rotation_keys[1] is existing
        assert set(ev.rotation_keys) == {1, 2, 3}

    def test_interleaved_program_unions_never_regenerate(self, small_ring):
        """Serving sessions run many programs; unions must reuse evks.

        Two programs' rotation unions arrive interleaved, on *different*
        evaluators of the same session keygen, with overlapping amounts
        and aliases (negative amounts, amounts shifted by N/2 — the
        order of the slot generator 5).  ``switching_keys_generated``
        must count exactly one generation per distinct galois element.
        """
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        half = small_ring.n // 2
        ev_a, ev_b = Evaluator(small_ring), Evaluator(small_ring)
        kg.ensure_rotation_keys(ev_a, [1, 2])          # program A
        kg.ensure_rotation_keys(ev_b, [2, 3])          # program B
        kg.ensure_rotation_keys(ev_a, [3, 1 + half])   # A again (alias)
        kg.ensure_rotation_keys(ev_b, [1, -1])         # B: -1 == half - 1
        assert kg.switching_keys_generated == 4  # elements 1, 2, 3, -1
        assert set(ev_a.rotation_keys) == {1, 2, 3}
        assert set(ev_b.rotation_keys) == {1, 2, 3, half - 1}
        for amount in (1, 2, 3):
            assert ev_a.rotation_keys[amount] is ev_b.rotation_keys[amount]

    def test_negative_amounts_are_canonicalized(self, small_ring):
        """A raw -1 keys the entry a fully-packed rotate looks up.

        Before canonicalization ensure_rotation_keys stored it under
        ``-1`` — an entry no ``amount % n_slots`` lookup can ever hit.
        (Sparse-packing callers must slot-reduce first; the runtime IR
        always does — see ``canonical_rotation``'s docstring.)
        """
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        ev = Evaluator(small_ring)
        kg.ensure_rotation_keys(ev, [-1])
        half = small_ring.n // 2
        assert set(ev.rotation_keys) == {half - 1}
        assert kg.canonical_rotation(-1) == half - 1

    def test_rotation_keys_for_bundles_cached_objects(self, small_ring):
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        first = kg.rotation_keys_for([1, 2, 0])
        assert set(first) == {1, 2}  # 0 skipped
        again = kg.rotation_keys_for([2, 1])
        assert again[1] is first[1] and again[2] is first[2]

    def test_concurrent_generation_is_single_flight(self, small_ring):
        """The scheduler's worker pool must not double-generate an evk."""
        import threading
        from repro.ckks.keys import KeyGenerator
        kg = KeyGenerator(small_ring, seed=99)
        results = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            results.append(kg.gen_rotation_key(5))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(evk is results[0] for evk in results)
        assert kg.switching_keys_generated == 1

    def test_bootstrap_generate_keys_accepts_extra_rotations(
            self, small_ring):
        from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.keys import KeyGenerator
        from repro.ckks.sine import SineConfig
        kg = KeyGenerator(small_ring, seed=99)
        ev = Evaluator(small_ring)
        bs = Bootstrapper(ev, BootstrapConfig(
            n_slots=4, sine=SineConfig(k_range=12, degree=1,
                                       double_angles=0)))
        bs.generate_keys(kg, extra_rotations={5, 1})
        required = bs.required_rotations(small_ring.n, 4)
        assert required | {5, 1} <= set(ev.rotation_keys)
        # shared amounts were keyed once: the evaluator holds the
        # keygen's cached object for every amount
        for amount, evk in ev.rotation_keys.items():
            assert kg.gen_rotation_key(amount) is evk
