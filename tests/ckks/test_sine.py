"""Tests for Chebyshev fitting, division, and homomorphic evaluation."""

import numpy as np
import pytest
from numpy.polynomial import chebyshev as cheb

from repro.ckks.sine import (
    ChebyshevEvaluator,
    SineConfig,
    SineEvaluator,
    cheby_divmod,
    chebyshev_fit,
    double_angle,
)
from tests.conftest import encrypt_message

SCALE = 2.0 ** 40


class TestChebyshevFit:
    def test_fits_cosine(self):
        coeffs = chebyshev_fit(np.cos, 15)
        xs = np.linspace(-1, 1, 101)
        assert np.max(np.abs(cheb.chebval(xs, coeffs) - np.cos(xs))) < 1e-10

    def test_sine_config_base_function(self):
        cfg = SineConfig(k_range=12, degree=31, double_angles=2)
        func = cfg.base_function()
        # at u = 0.25/12 (t = 0.25), the shifted cosine hits its maximum
        assert func(0.25 / 12) == pytest.approx(1.0)

    def test_fit_accuracy_for_eval_mod(self):
        cfg = SineConfig()
        coeffs = chebyshev_fit(cfg.base_function(), cfg.degree)
        xs = np.linspace(-1, 1, 400)
        err = np.abs(cheb.chebval(xs, coeffs) - cfg.base_function()(xs))
        assert np.max(err) < 1e-7


class TestChebyDivmod:
    @pytest.mark.parametrize("degree,split", [(15, 8), (31, 8), (20, 16)])
    def test_reconstruction(self, degree, split, rng):
        coeffs = rng.normal(size=degree + 1)
        q, r = cheby_divmod(coeffs, split)
        xs = np.linspace(-1, 1, 57)
        lhs = cheb.chebval(xs, coeffs)
        t_s = np.cos(split * np.arccos(xs))
        rhs = cheb.chebval(xs, q) * t_s + cheb.chebval(xs, r)
        assert np.max(np.abs(lhs - rhs)) < 1e-9

    def test_degree_bounds(self, rng):
        coeffs = rng.normal(size=32)
        q, r = cheby_divmod(coeffs, 8)
        assert len(r) == 8
        assert len(q) == 32 - 8

    def test_below_split_passthrough(self, rng):
        coeffs = rng.normal(size=4)
        q, r = cheby_divmod(coeffs, 8)
        assert np.allclose(q, 0)
        assert np.allclose(r, coeffs)


class TestDepth:
    def test_sine_depth_formula(self):
        assert SineConfig(degree=63, double_angles=2).depth == 9

    def test_higher_degree_deeper(self):
        assert SineConfig(degree=127).depth > SineConfig(degree=31).depth


class TestHomomorphicChebyshev:
    @pytest.fixture(scope="class")
    def deep_setup(self):
        """A deeper ring so degree-15 evaluations fit."""
        from repro.ckks.encoder import Encoder
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.keys import KeyGenerator
        from repro.ckks.params import CkksParams, RingContext
        params = CkksParams.functional(n=1 << 8, l=10, dnum=2,
                                       scale_bits=40, q0_bits=50,
                                       p_bits=50, h=16)
        ring = RingContext(params)
        kg = KeyGenerator(ring, seed=77)
        ev = Evaluator(ring, relin_key=kg.gen_relinearization_key())
        return ring, kg, ev, Encoder(ring)

    def test_double_angle(self, deep_setup, rng):
        ring, kg, ev, enc = deep_setup
        theta = rng.uniform(-1, 1, size=8)
        ct = encrypt_message(kg, enc, np.cos(theta) + 0j, SCALE)
        out = double_angle(ev, ct)
        got = ev.decrypt_to_message(out, kg.secret)
        assert np.max(np.abs(got - np.cos(2 * theta))) < 1e-4

    def test_low_degree_polynomial(self, deep_setup, rng):
        ring, kg, ev, enc = deep_setup
        u = rng.uniform(-1, 1, size=8)
        ct = encrypt_message(kg, enc, u + 0j, SCALE)
        coeffs = np.array([0.5, -1.0, 0.25, 0.125])
        evaluator = ChebyshevEvaluator(ev, ct, degree=3)
        out = evaluator.evaluate(coeffs)
        got = ev.decrypt_to_message(out, kg.secret)
        assert np.max(np.abs(got - cheb.chebval(u, coeffs))) < 1e-4

    def test_degree_15_ps(self, deep_setup, rng):
        ring, kg, ev, enc = deep_setup
        u = rng.uniform(-1, 1, size=8)
        ct = encrypt_message(kg, enc, u + 0j, SCALE)
        coeffs = chebyshev_fit(lambda x: np.cos(4 * x), 15)
        evaluator = ChebyshevEvaluator(ev, ct, degree=15)
        out = evaluator.evaluate(coeffs)
        got = ev.decrypt_to_message(out, kg.secret)
        assert np.max(np.abs(got - np.cos(4 * u))) < 1e-3

    def test_sine_evaluator_end_to_end(self, deep_setup, rng):
        """sin(2 pi t) for t in [-K, K] via base-cos + double angles."""
        ring, kg, ev, enc = deep_setup
        cfg = SineConfig(k_range=4, degree=31, double_angles=1)
        t = rng.uniform(-3.4, 3.4, size=8)
        u = t / cfg.k_range
        ct = encrypt_message(kg, enc, u + 0j, SCALE)
        out = SineEvaluator(cfg).evaluate(ev, ct)
        got = ev.decrypt_to_message(out, kg.secret)
        assert np.max(np.abs(got - np.sin(2 * np.pi * t))) < 5e-2

    def test_rejects_zero_polynomial(self, deep_setup, rng):
        ring, kg, ev, enc = deep_setup
        ct = encrypt_message(kg, enc, np.zeros(8) + 0j, SCALE)
        evaluator = ChebyshevEvaluator(ev, ct, degree=3)
        with pytest.raises(ValueError):
            evaluator.evaluate(np.zeros(4))

    def test_rejects_degree_zero(self, deep_setup, rng):
        ring, kg, ev, enc = deep_setup
        ct = encrypt_message(kg, enc, np.zeros(8) + 0j, SCALE)
        with pytest.raises(ValueError):
            ChebyshevEvaluator(ev, ct, degree=0)
