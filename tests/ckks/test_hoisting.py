"""Tests for hoisted rotations (shared-ModUp key-switching)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.keyswitch import (
    hoist_decomposition,
    key_switch,
    key_switch_raised,
    raise_decomposition,
    raise_hoisted,
)
from repro.ckks.rns import RnsPolynomial
from tests.conftest import encrypt_message

SCALE = 2.0 ** 40


def _uniform(ring, base, seed):
    rng = np.random.default_rng(seed)
    residues = np.stack([
        rng.integers(0, p.value, size=ring.n, dtype=np.uint64)
        for p in base])
    return RnsPolynomial(base, residues, is_ntt=True)


class TestRaiseDecomposition:
    def test_slice_count_matches_beta(self, small_ring, small_params):
        level = small_params.l
        poly = _uniform(small_ring, small_ring.base_q(level), 1)
        raised = raise_decomposition(poly, level, small_ring)
        assert len(raised) == len(
            small_ring.decomposition_blocks(level))

    def test_slices_on_working_base(self, small_ring):
        poly = _uniform(small_ring, small_ring.base_q(3), 2)
        for piece in raise_decomposition(poly, 3, small_ring):
            assert piece.base == small_ring.base_qp(3)
            assert piece.is_ntt

    def test_requires_ntt(self, small_ring):
        poly = _uniform(small_ring, small_ring.base_q(2), 3).from_ntt()
        with pytest.raises(ValueError):
            raise_decomposition(poly, 2, small_ring)


class TestSplitKeySwitchEquivalence:
    def test_two_phase_equals_monolithic(self, small_ring, small_keys):
        """raise + key_switch_raised == key_switch exactly."""
        level = 4
        evk = small_keys.gen_relinearization_key()
        poly = _uniform(small_ring, small_ring.base_q(level), 4)
        b1, a1 = key_switch(poly, evk, level, small_ring)
        raised = raise_decomposition(poly, level, small_ring)
        b2, a2 = key_switch_raised(raised, evk, level, small_ring)
        assert np.array_equal(b1.residues, b2.residues)
        assert np.array_equal(a1.residues, a2.residues)

    def test_too_few_evk_slices_rejected(self, small_ring, small_keys):
        from repro.ckks.keys import EvaluationKey
        evk = small_keys.gen_relinearization_key()
        truncated = EvaluationKey(slices=evk.slices[:1])
        level = small_ring.max_level  # needs dnum slices
        poly = _uniform(small_ring, small_ring.base_q(level), 5)
        raised = raise_decomposition(poly, level, small_ring)
        if len(raised) > 1:
            with pytest.raises(ValueError):
                key_switch_raised(raised, truncated, level, small_ring)


class TestHoistedRotation:
    def test_matches_individual_rotations(self, small_evaluator,
                                          small_keys, small_encoder, rng,
                                          small_params):
        z = rng.normal(size=small_params.slots_max) \
            + 1j * rng.normal(size=small_params.slots_max)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        amounts = [1, 2, 4]
        hoisted = small_evaluator.rotate_hoisted(ct, amounts)
        for amount in amounts:
            want = small_evaluator.decrypt_to_message(
                small_evaluator.rotate(ct, amount), small_keys.secret)
            got = small_evaluator.decrypt_to_message(
                hoisted[amount], small_keys.secret)
            assert np.max(np.abs(got - want)) < 1e-6

    def test_correct_against_plaintext(self, small_evaluator, small_keys,
                                       small_encoder, rng, small_params):
        z = rng.normal(size=small_params.slots_max) \
            + 1j * rng.normal(size=small_params.slots_max)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        hoisted = small_evaluator.rotate_hoisted(ct, [2, 3])
        for amount in (2, 3):
            got = small_evaluator.decrypt_to_message(hoisted[amount],
                                                     small_keys.secret)
            assert np.max(np.abs(got - np.roll(z, -amount))) < 1e-6

    def test_zero_amount_identity(self, small_evaluator, small_keys,
                                  small_encoder, rng, small_params):
        z = rng.normal(size=small_params.slots_max) + 0j
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        hoisted = small_evaluator.rotate_hoisted(ct, [0, 1])
        got = small_evaluator.decrypt_to_message(hoisted[0],
                                                 small_keys.secret)
        assert np.max(np.abs(got - z)) < 1e-6

    def test_duplicate_amounts_deduplicated(self, small_evaluator,
                                            small_keys, small_encoder,
                                            rng, small_params):
        z = rng.normal(size=small_params.slots_max) + 0j
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        hoisted = small_evaluator.rotate_hoisted(ct, [1, 1, 1])
        assert set(hoisted) == {1}

    def test_missing_key_rejected(self, small_evaluator, small_keys,
                                  small_encoder, rng, small_params):
        z = rng.normal(size=small_params.slots_max) + 0j
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        with pytest.raises(ValueError):
            small_evaluator.rotate_hoisted(ct, [7])

    def test_works_at_lower_level(self, small_evaluator, small_keys,
                                  small_encoder, rng, small_params):
        z = rng.normal(size=small_params.slots_max) + 0j
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        low = small_evaluator.drop_to_level(ct, 2)
        hoisted = small_evaluator.rotate_hoisted(low, [1])
        got = small_evaluator.decrypt_to_message(hoisted[1],
                                                 small_keys.secret)
        assert np.max(np.abs(got - np.roll(z, -1))) < 1e-6


@pytest.mark.slow
class TestHoistedBitIdentity:
    """Invariant: rotate_hoisted(ct, rots) == {r: rotate(ct, r)} bitwise.

    Both paths funnel through ``Evaluator._galois_from_hoisted``; the
    only difference is whether the decompose/ModUp half is shared, and
    that half is a deterministic function of ``ct.a``.  Any residue
    mismatch means the shared half leaked rotation-dependent state.
    """

    @given(amounts=st.lists(st.sampled_from([1, 2, 3, 4, 8, 16]),
                            min_size=1, max_size=5),
           seed=st.integers(min_value=0, max_value=2 ** 16),
           level_drop=st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_bit_identical_to_sequential(self, amounts, seed, level_drop,
                                         small_evaluator, small_keys,
                                         small_encoder, small_params):
        gen = np.random.default_rng(seed)
        z = gen.normal(size=small_params.slots_max) \
            + 1j * gen.normal(size=small_params.slots_max)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        if level_drop:
            ct = small_evaluator.drop_to_level(ct, ct.level - level_drop)
        hoisted = small_evaluator.rotate_hoisted(ct, amounts)
        for amount in set(amounts):
            want = small_evaluator.rotate(ct, amount)
            got = hoisted[amount]
            assert got.level == want.level
            assert got.scale == want.scale
            assert np.array_equal(got.b.residues, want.b.residues)
            assert np.array_equal(got.a.residues, want.a.residues)

    def test_hoist_halves_compose_to_full_raise(self, small_ring):
        """hoist + raise(galois=1) reproduces raise_decomposition."""
        level = 4
        poly = _uniform(small_ring, small_ring.base_q(level), 11)
        parts = hoist_decomposition(poly, level, small_ring)
        raised = raise_hoisted(parts, 1, level, small_ring)
        want = raise_decomposition(poly, level, small_ring)
        assert len(raised) == len(want)
        for got, expect in zip(raised, want):
            assert got.base == expect.base
            assert np.array_equal(got.residues, expect.residues)

    def test_hoist_requires_ntt(self, small_ring):
        poly = _uniform(small_ring, small_ring.base_q(2), 12).from_ntt()
        with pytest.raises(ValueError):
            hoist_decomposition(poly, 2, small_ring)
