"""Tests for homomorphic BSGS linear transforms."""

import numpy as np
import pytest

from repro.ckks.linear_transform import (
    LinearTransform,
    bsgs_rotations,
    bsgs_split,
    matrix_diagonals,
)
from tests.conftest import encrypt_message

SCALE = 2.0 ** 40


class TestDiagonals:
    def test_identity_matrix(self):
        diags = matrix_diagonals(np.eye(8, dtype=complex))
        assert set(diags) == {0}
        assert np.allclose(diags[0], np.ones(8))

    def test_shift_matrix(self):
        """A cyclic shift matrix is a single off-diagonal."""
        n = 8
        mat = np.zeros((n, n), dtype=complex)
        for j in range(n):
            mat[j, (j + 3) % n] = 1.0
        diags = matrix_diagonals(mat)
        assert set(diags) == {3}

    def test_dense_matrix_has_all_diagonals(self, rng):
        mat = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        assert len(matrix_diagonals(mat)) == 8

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((4, 8)))

    def test_reconstruction(self, rng):
        """M z == sum_d diag_d * roll(z, -d) (the BSGS identity)."""
        n = 16
        mat = rng.normal(size=(n, n))
        z = rng.normal(size=n)
        diags = matrix_diagonals(mat)
        via_diags = sum(diags[d] * np.roll(z, -d) for d in diags)
        assert np.allclose(via_diags, mat @ z)


class TestBsgsPlanning:
    def test_split_is_power_of_two(self):
        for n in (16, 64, 100, 256):
            g = bsgs_split(n)
            assert g & (g - 1) == 0
            assert g >= int(np.sqrt(n))

    def test_rotation_amounts_cover(self):
        n = 16
        amounts = bsgs_rotations(n, n)
        g = bsgs_split(n)
        for d in range(1, n):
            baby = d % g
            giant = (d - baby) % n
            assert baby in amounts | {0}
            assert giant in amounts | {0}

    def test_zero_rotation_excluded(self):
        assert 0 not in bsgs_rotations(16, 16)


class TestHomomorphicApply:
    @pytest.fixture()
    def lt_evaluator(self, small_ring, small_keys):
        from repro.ckks.evaluator import Evaluator
        n_slots = 16
        amounts = bsgs_rotations(n_slots, n_slots)
        return Evaluator(
            small_ring,
            relin_key=small_keys.gen_relinearization_key(),
            rotation_keys={r: small_keys.gen_rotation_key(r)
                           for r in amounts},
            conjugation_key=small_keys.gen_conjugation_key())

    def test_identity_transform(self, lt_evaluator, small_keys,
                                small_encoder, rng):
        z = rng.normal(size=16) + 1j * rng.normal(size=16)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        lt = LinearTransform.from_matrix(np.eye(16, dtype=complex))
        out = lt.apply(lt_evaluator, ct)
        got = lt_evaluator.decrypt_to_message(out, small_keys.secret)
        assert np.max(np.abs(got - z)) < 1e-5
        assert out.level == ct.level - 1

    def test_dense_matrix(self, lt_evaluator, small_keys, small_encoder,
                          rng):
        n = 16
        mat = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / n
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        lt = LinearTransform.from_matrix(mat)
        out = lt.apply(lt_evaluator, ct)
        got = lt_evaluator.decrypt_to_message(out, small_keys.secret)
        assert np.max(np.abs(got - mat @ z)) < 1e-4

    def test_sparse_diagonal_matrix(self, lt_evaluator, small_keys,
                                    small_encoder, rng):
        n = 16
        mat = np.diag(rng.normal(size=n)).astype(complex)
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        out = LinearTransform.from_matrix(mat).apply(lt_evaluator, ct)
        got = lt_evaluator.decrypt_to_message(out, small_keys.secret)
        assert np.max(np.abs(got - mat @ z)) < 1e-5

    def test_slot_count_mismatch(self, lt_evaluator, small_keys,
                                 small_encoder, rng):
        z = rng.normal(size=8)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        lt = LinearTransform.from_matrix(np.eye(16, dtype=complex))
        with pytest.raises(ValueError):
            lt.apply(lt_evaluator, ct)

    def test_required_rotations_subset(self):
        lt = LinearTransform.from_matrix(np.eye(16, dtype=complex))
        assert lt.required_rotations() == set()


class TestDoubleHoisting:
    """Lazy giant-step accumulation vs the eager reference path.

    Double-hoisting reorders where the ModDown BConv approximation
    enters (once per giant group instead of once per baby step), so the
    two routes are not bit-identical — they must agree at the message
    level to far below the noise floor, at every level, including rings
    where level truncation leaves a ragged decomposition tail.
    """

    def test_matches_eager_reference_dense(self, small_ring, small_keys,
                                           small_encoder, rng):
        from repro.ckks.evaluator import Evaluator

        n = 16
        amounts = bsgs_rotations(n, n)
        ev = Evaluator(
            small_ring,
            relin_key=small_keys.gen_relinearization_key(),
            rotation_keys={r: small_keys.gen_rotation_key(r)
                           for r in amounts})
        mat = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / n
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        lt = LinearTransform.from_matrix(mat)
        for level in (small_ring.max_level, small_ring.max_level - 1, 3):
            ct = ev.drop_to_level(
                encrypt_message(small_keys, small_encoder, z, SCALE),
                level)
            lazy = lt.apply(ev, ct, double_hoist=True)
            eager = lt.apply(ev, ct, double_hoist=False)
            assert lazy.level == eager.level
            assert lazy.scale == eager.scale
            got = ev.decrypt_to_message(lazy, small_keys.secret)
            want = ev.decrypt_to_message(eager, small_keys.secret)
            assert np.max(np.abs(got - want)) < 1e-7, level
            assert np.max(np.abs(got - mat @ z)) < 1e-4, level

    def test_p_scaled_extension_roundtrip(self, small_ring, rng):
        """mod_down(P * poly) == poly exactly (the baby-0 identity)."""
        from repro.ckks.keyswitch import mod_down, p_scaled_extension
        from repro.ckks.rns import RnsPolynomial

        level = 4
        base = small_ring.base_q(level)
        poly = RnsPolynomial(base, np.stack([
            rng.integers(0, p.value, size=small_ring.n, dtype=np.uint64)
            for p in base]), is_ntt=True)
        extended = p_scaled_extension(poly, level, small_ring)
        assert np.all(extended.residues[level + 1:] == 0)
        back = mod_down(extended, level, small_ring)
        assert np.array_equal(back.residues, poly.residues)

    def test_p_scaled_extension_requires_ntt(self, small_ring, rng):
        from repro.ckks.keyswitch import p_scaled_extension
        from repro.ckks.rns import RnsPolynomial

        base = small_ring.base_q(2)
        poly = RnsPolynomial(base, np.stack([
            rng.integers(0, p.value, size=small_ring.n, dtype=np.uint64)
            for p in base]), is_ntt=False)
        with pytest.raises(ValueError):
            p_scaled_extension(poly, 2, small_ring)

    def test_accumulate_then_moddown_equals_key_switch_raised(
            self, small_ring, small_keys, rng):
        """key_switch_raised == mod_down_pair(key_switch_accumulate)."""
        from repro.ckks.keyswitch import (
            key_switch_accumulate,
            key_switch_raised,
            mod_down_pair,
            raise_decomposition,
        )
        from repro.ckks.rns import RnsPolynomial

        level = 4
        evk = small_keys.gen_relinearization_key()
        base = small_ring.base_q(level)
        poly = RnsPolynomial(base, np.stack([
            rng.integers(0, p.value, size=small_ring.n, dtype=np.uint64)
            for p in base]), is_ntt=True)
        raised = raise_decomposition(poly, level, small_ring)
        b1, a1 = key_switch_raised(raised, evk, level, small_ring)
        acc_b, acc_a = key_switch_accumulate(raised, evk, level,
                                             small_ring)
        b2, a2 = mod_down_pair(acc_b, acc_a, level, small_ring)
        assert np.array_equal(b1.residues, b2.residues)
        assert np.array_equal(a1.residues, a2.residues)
