"""Tests for homomorphic BSGS linear transforms."""

import numpy as np
import pytest

from repro.ckks.linear_transform import (
    LinearTransform,
    bsgs_rotations,
    bsgs_split,
    matrix_diagonals,
)
from tests.conftest import encrypt_message

SCALE = 2.0 ** 40


class TestDiagonals:
    def test_identity_matrix(self):
        diags = matrix_diagonals(np.eye(8, dtype=complex))
        assert set(diags) == {0}
        assert np.allclose(diags[0], np.ones(8))

    def test_shift_matrix(self):
        """A cyclic shift matrix is a single off-diagonal."""
        n = 8
        mat = np.zeros((n, n), dtype=complex)
        for j in range(n):
            mat[j, (j + 3) % n] = 1.0
        diags = matrix_diagonals(mat)
        assert set(diags) == {3}

    def test_dense_matrix_has_all_diagonals(self, rng):
        mat = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
        assert len(matrix_diagonals(mat)) == 8

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((4, 8)))

    def test_reconstruction(self, rng):
        """M z == sum_d diag_d * roll(z, -d) (the BSGS identity)."""
        n = 16
        mat = rng.normal(size=(n, n))
        z = rng.normal(size=n)
        diags = matrix_diagonals(mat)
        via_diags = sum(diags[d] * np.roll(z, -d) for d in diags)
        assert np.allclose(via_diags, mat @ z)


class TestBsgsPlanning:
    def test_split_is_power_of_two(self):
        for n in (16, 64, 100, 256):
            g = bsgs_split(n)
            assert g & (g - 1) == 0
            assert g >= int(np.sqrt(n))

    def test_rotation_amounts_cover(self):
        n = 16
        amounts = bsgs_rotations(n, n)
        g = bsgs_split(n)
        for d in range(1, n):
            baby = d % g
            giant = (d - baby) % n
            assert baby in amounts | {0}
            assert giant in amounts | {0}

    def test_zero_rotation_excluded(self):
        assert 0 not in bsgs_rotations(16, 16)


class TestHomomorphicApply:
    @pytest.fixture()
    def lt_evaluator(self, small_ring, small_keys):
        from repro.ckks.evaluator import Evaluator
        n_slots = 16
        amounts = bsgs_rotations(n_slots, n_slots)
        return Evaluator(
            small_ring,
            relin_key=small_keys.gen_relinearization_key(),
            rotation_keys={r: small_keys.gen_rotation_key(r)
                           for r in amounts},
            conjugation_key=small_keys.gen_conjugation_key())

    def test_identity_transform(self, lt_evaluator, small_keys,
                                small_encoder, rng):
        z = rng.normal(size=16) + 1j * rng.normal(size=16)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        lt = LinearTransform.from_matrix(np.eye(16, dtype=complex))
        out = lt.apply(lt_evaluator, ct)
        got = lt_evaluator.decrypt_to_message(out, small_keys.secret)
        assert np.max(np.abs(got - z)) < 1e-5
        assert out.level == ct.level - 1

    def test_dense_matrix(self, lt_evaluator, small_keys, small_encoder,
                          rng):
        n = 16
        mat = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / n
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        lt = LinearTransform.from_matrix(mat)
        out = lt.apply(lt_evaluator, ct)
        got = lt_evaluator.decrypt_to_message(out, small_keys.secret)
        assert np.max(np.abs(got - mat @ z)) < 1e-4

    def test_sparse_diagonal_matrix(self, lt_evaluator, small_keys,
                                    small_encoder, rng):
        n = 16
        mat = np.diag(rng.normal(size=n)).astype(complex)
        z = rng.normal(size=n) + 1j * rng.normal(size=n)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        out = LinearTransform.from_matrix(mat).apply(lt_evaluator, ct)
        got = lt_evaluator.decrypt_to_message(out, small_keys.secret)
        assert np.max(np.abs(got - mat @ z)) < 1e-5

    def test_slot_count_mismatch(self, lt_evaluator, small_keys,
                                 small_encoder, rng):
        z = rng.normal(size=8)
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        lt = LinearTransform.from_matrix(np.eye(16, dtype=complex))
        with pytest.raises(ValueError):
            lt.apply(lt_evaluator, ct)

    def test_required_rotations_subset(self):
        lt = LinearTransform.from_matrix(np.eye(16, dtype=complex))
        assert lt.required_rotations() == set()
