"""Tests for public-key encryption."""

import numpy as np
import pytest

from repro.ckks.encryptor import Encryptor, encrypt_message
from repro.ckks.keys import KeyGenerator


@pytest.fixture(scope="module")
def pk_setup(small_ring, small_keys):
    # the public key must belong to the same secret as the session
    # evaluator's relin/rotation keys, or HMult cross-terms are garbage
    pk = small_keys.gen_public_key()
    encryptor = Encryptor.create(small_ring, pk, seed=56)
    return small_keys, encryptor


class TestPublicKeyEncryption:
    def test_roundtrip(self, pk_setup, small_evaluator, small_encoder,
                       rng):
        keygen, encryptor = pk_setup
        z = rng.normal(size=8) + 1j * rng.normal(size=8)
        ct = encrypt_message(encryptor, small_encoder, z)
        got = small_evaluator.decrypt_to_message(ct, keygen.secret)
        assert np.max(np.abs(got - z)) < 1e-6

    def test_noise_larger_than_symmetric(self, pk_setup, small_encoder,
                                         small_evaluator, rng):
        """pk encryption adds the v*e term: noisier than symmetric."""
        keygen, encryptor = pk_setup
        z = rng.normal(size=32)
        pt = small_encoder.encode(z + 0j, 2.0 ** 40)
        sym = keygen.encrypt_symmetric(pt.poly, pt.scale, 32)
        pub = encryptor.encrypt(pt, 32)
        err_sym = np.max(np.abs(small_evaluator.decrypt_to_message(
            sym, keygen.secret) - z))
        err_pub = np.max(np.abs(small_evaluator.decrypt_to_message(
            pub, keygen.secret) - z))
        assert err_pub > err_sym
        assert err_pub < 1e-6  # but still tiny

    def test_randomized(self, pk_setup, small_encoder):
        """Two encryptions of the same message differ."""
        keygen, encryptor = pk_setup
        pt = small_encoder.encode(np.ones(4), 2.0 ** 40)
        ct1 = encryptor.encrypt(pt, 4)
        ct2 = encryptor.encrypt(pt, 4)
        assert not np.array_equal(ct1.b.residues, ct2.b.residues)

    def test_level_matched(self, pk_setup, small_encoder):
        keygen, encryptor = pk_setup
        pt = small_encoder.encode(np.ones(4), 2.0 ** 40, level=2)
        ct = encryptor.encrypt(pt, 4)
        assert ct.level == 2

    def test_homomorphic_ops_work(self, pk_setup, small_evaluator,
                                  small_encoder, rng):
        """pk-encrypted cts are first-class: mult and rotate fine."""
        keygen, encryptor = pk_setup
        z = rng.normal(size=small_evaluator.ring.n // 2)
        ct = encrypt_message(encryptor, small_encoder, z + 0j)
        sq = small_evaluator.multiply(ct, ct)
        got = small_evaluator.decrypt_to_message(sq, keygen.secret)
        # pk-encryption noise is amplified by the square: looser bound
        assert np.max(np.abs(got - z ** 2)) < 1e-3

    def test_encrypt_zero(self, pk_setup, small_evaluator):
        keygen, encryptor = pk_setup
        ct = encryptor.encrypt_zero(level=3, scale=2.0 ** 40, n_slots=8)
        got = small_evaluator.decrypt_to_message(ct, keygen.secret)
        assert np.max(np.abs(got)) < 1e-6
        assert ct.level == 3
