"""End-to-end bootstrapping tests (the scheme's headline capability)."""

import numpy as np
import pytest

from repro.ckks.bootstrap import Bootstrapper, BootstrapConfig
from repro.ckks.encoder import Encoder
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.params import CkksParams, RingContext
from repro.ckks.sine import SineConfig


@pytest.fixture(scope="module")
def boot_setup():
    """N=512 bootstrappable ring (sparse packing, 4 slots)."""
    params = CkksParams.functional(n=1 << 9, l=14, dnum=3, scale_bits=40,
                                   q0_bits=52, p_bits=52, h=32)
    ring = RingContext(params)
    kg = KeyGenerator(ring, seed=11)
    ev = Evaluator(ring)
    cfg = BootstrapConfig(
        n_slots=4,
        sine=SineConfig(k_range=12, degree=63, double_angles=2))
    bs = Bootstrapper(ev, cfg)
    bs.generate_keys(kg)
    return params, ring, kg, ev, bs


def _encrypt(ring, kg, z, scale=2.0 ** 40):
    pt = Encoder(ring).encode(z, scale)
    return kg.encrypt_symmetric(pt.poly, scale, len(z))


class TestConfig:
    def test_levels_consumed(self, boot_setup):
        _, _, _, _, bs = boot_setup
        assert bs.config.levels_consumed() == 12

    def test_rejects_insufficient_levels(self):
        params = CkksParams.functional(n=1 << 9, l=6, dnum=2)
        ring = RingContext(params)
        ev = Evaluator(ring)
        with pytest.raises(ValueError):
            Bootstrapper(ev, BootstrapConfig(n_slots=4))

    def test_rejects_bad_slot_count(self, boot_setup):
        _, ring, _, ev, _ = boot_setup
        with pytest.raises(ValueError):
            Bootstrapper(ev, BootstrapConfig(n_slots=3))

    def test_required_rotations_cover_subsum(self):
        amounts = Bootstrapper.required_rotations(512, 4)
        # SubSum needs 4, 8, ..., 128
        assert {4, 8, 16, 32, 64, 128} <= amounts


class TestStages:
    def test_mod_raise_restores_full_level(self, boot_setup, rng):
        params, ring, kg, ev, bs = boot_setup
        z = rng.normal(size=4) * 0.3
        ct = ev.drop_to_level(_encrypt(ring, kg, z), 0)
        raised = bs.mod_raise(ct)
        assert raised.level == params.l

    def test_mod_raise_preserves_message_mod_q0(self, boot_setup, rng):
        """Decrypting the raised ct mod q0 still yields the message."""
        params, ring, kg, ev, bs = boot_setup
        z = rng.normal(size=4) * 0.3
        ct = ev.drop_to_level(_encrypt(ring, kg, z), 0)
        raised = bs.mod_raise(ct)
        low_again = ev.drop_to_level(raised, 0)
        got = ev.decrypt_to_message(low_again, kg.secret)
        assert np.max(np.abs(got - z)) < 1e-6

    def test_coeff_to_slot_then_back(self, boot_setup, rng):
        """StC(CtS(ct)) ~ identity up to the two folded constants.

        CtS carries 1/replicas (compensating SubSum, skipped here) and
        StC carries the q0/(2*pi*Delta) sine amplitude; divide both out.
        """
        params, ring, kg, ev, bs = boot_setup
        z = rng.normal(size=4) * 0.3 + 1j * rng.normal(size=4) * 0.3
        ct = _encrypt(ring, kg, z)
        slotted = bs.coeff_to_slot(ct)
        back = bs.slot_to_coeff(slotted)
        q0 = float(ring.q_primes[0].value)
        amplitude = q0 / (2.0 * np.pi * 2.0 ** params.scale_bits)
        replicas = (params.n // 2) // bs.config.n_slots
        got = ev.decrypt_to_message(back, kg.secret) \
            * replicas / amplitude
        assert np.max(np.abs(got - z)) < 1e-3

    def test_mul_by_i(self, boot_setup, rng):
        _, ring, kg, ev, bs = boot_setup
        z = rng.normal(size=4) + 1j * rng.normal(size=4)
        ct = _encrypt(ring, kg, z)
        got = ev.decrypt_to_message(bs._mul_by_i(ct), kg.secret)
        assert np.max(np.abs(got - 1j * z)) < 1e-6


class TestFullPipeline:
    def test_bootstrap_refreshes_level(self, boot_setup, rng):
        params, ring, kg, ev, bs = boot_setup
        z = rng.normal(size=4) * 0.5 + 1j * rng.normal(size=4) * 0.5
        ct = ev.drop_to_level(_encrypt(ring, kg, z), 0)
        out = bs.bootstrap(ct)
        assert out.level >= 2
        got = ev.decrypt_to_message(out, kg.secret)
        assert np.max(np.abs(got - z)) < 5e-2

    def test_can_multiply_after_bootstrap(self, boot_setup, rng):
        params, ring, kg, ev, bs = boot_setup
        z = rng.normal(size=4) * 0.5
        ct = ev.drop_to_level(_encrypt(ring, kg, z + 0j), 0)
        out = bs.bootstrap(ct)
        squared = ev.multiply(out, out)
        got = ev.decrypt_to_message(squared, kg.secret)
        assert np.max(np.abs(got - z ** 2)) < 1e-1

    def test_rejects_wrong_slot_count(self, boot_setup, rng):
        _, ring, kg, ev, bs = boot_setup
        z = rng.normal(size=8)
        ct = ev.drop_to_level(_encrypt(ring, kg, z + 0j), 0)
        with pytest.raises(ValueError):
            bs.bootstrap(ct)


@pytest.mark.slow
class TestLargerRing:
    def test_bootstrap_n1024_16slots(self):
        """Bootstrap at N=2^10 with 16 slots; checks error and level."""
        params = CkksParams.functional(n=1 << 10, l=14, dnum=3,
                                       scale_bits=40, q0_bits=52,
                                       p_bits=52, h=64)
        ring = RingContext(params)
        kg = KeyGenerator(ring, seed=3)
        ev = Evaluator(ring)
        bs = Bootstrapper(ev, BootstrapConfig(
            n_slots=16, sine=SineConfig(k_range=12, degree=63,
                                        double_angles=2)))
        bs.generate_keys(kg)
        rng = np.random.default_rng(5)
        z = rng.normal(size=16) * 0.5 + 1j * rng.normal(size=16) * 0.5
        ct = ev.drop_to_level(_encrypt(ring, kg, z), 0)
        out = bs.bootstrap(ct)
        got = ev.decrypt_to_message(out, kg.secret)
        assert out.level >= 2
        # toy parameters (Delta=2^40, q0=2^52, degree-63 sine) refresh
        # with ~3-4 bits of precision; production presets use Delta=2^45+
        # and higher degrees for 15-20 bits
        assert np.max(np.abs(got - z)) < 0.15
