"""Tests for generalized key-switching (ModUp / ModDown / dnum gadget)."""

import numpy as np
import pytest

from repro.ckks.keyswitch import key_switch, mod_down, mod_up
from repro.ckks.rns import RnsPolynomial, crt_reconstruct


def _uniform(ring, base, seed):
    rng = np.random.default_rng(seed)
    residues = np.stack([
        rng.integers(0, p.value, size=ring.n, dtype=np.uint64)
        for p in base])
    return RnsPolynomial(base, residues, is_ntt=True)


class TestModUp:
    def test_output_base(self, small_ring):
        level = 3
        block = small_ring.base_q(level)[0:2]
        poly = _uniform(small_ring, block, 1)
        raised = mod_up(poly, level, small_ring)
        assert raised.base == small_ring.base_qp(level)
        assert raised.is_ntt

    def test_block_limbs_pass_through(self, small_ring):
        level = 3
        block = small_ring.base_q(level)[0:2]
        poly = _uniform(small_ring, block, 2)
        raised = mod_up(poly, level, small_ring)
        assert np.array_equal(raised.residues[0], poly.residues[0])
        assert np.array_equal(raised.residues[1], poly.residues[1])

    def test_small_value_semantics(self, small_ring):
        """A small polynomial mods up to (nearly) itself everywhere."""
        level = 2
        block = small_ring.base_q(level)[0:2]
        coeffs = np.arange(small_ring.n, dtype=np.int64) - 100
        poly = RnsPolynomial.from_signed_coeffs(coeffs, block).to_ntt()
        raised = mod_up(poly, level, small_ring).from_ntt()
        import math
        q_block = math.prod(p.value for p in block)
        target = small_ring.base_qp(level)
        for i, prime in enumerate(target):
            got = raised.residues[i].astype(object)
            want = np.array([int(c) % prime.value for c in coeffs],
                            dtype=object)
            diff = (got - want) % prime.value
            allowed = {(u * q_block) % prime.value for u in range(-3, 4)}
            assert set(int(d) for d in diff) <= allowed


class TestModDown:
    def test_divides_by_p(self, small_ring):
        """mod_down(P * x) == x (up to rounding) for small x."""
        level = 2
        base = small_ring.base_qp(level)
        coeffs = np.arange(small_ring.n, dtype=np.int64) % 37 - 18
        x = RnsPolynomial.from_signed_coeffs(coeffs, base)
        p_prod = small_ring.p_product
        px = x.mul_int(p_prod).to_ntt()
        down = mod_down(px, level, small_ring).from_ntt()
        rec = crt_reconstruct(down)
        err = np.abs(rec.astype(np.float64)
                     - coeffs.astype(np.float64))
        assert err.max() <= len(base)  # BConv rounding error only

    def test_output_base(self, small_ring):
        poly = _uniform(small_ring, small_ring.base_qp(3), 4)
        out = mod_down(poly, 3, small_ring)
        assert out.base == small_ring.base_q(3)


class TestKeySwitch:
    @pytest.mark.parametrize("level", [1, 3, 6])
    def test_relinearization_semantics(self, small_ring, small_keys,
                                       level):
        """(ks_b - ks_a * s) must approximate d2 * s^2."""
        evk = small_keys.gen_relinearization_key()
        base = small_ring.base_q(level)
        d2 = _uniform(small_ring, base, level)
        ks_b, ks_a = key_switch(d2, evk, level, small_ring)
        s = small_keys.secret.restricted(base)
        got = ks_b.sub(ks_a.mul(s))
        want = d2.mul(s).mul(s)
        err_poly = got.sub(want).from_ntt()
        err = crt_reconstruct(err_poly).astype(np.float64)
        # error ~ (hamming * noise * N) / P: tiny relative to Q_level
        import math
        q_level = math.prod(p.value for p in base)
        assert np.max(np.abs(err)) < q_level / 2 ** 20

    def test_requires_ntt_domain(self, small_ring, small_keys):
        evk = small_keys.gen_relinearization_key()
        poly = _uniform(small_ring, small_ring.base_q(2), 7).from_ntt()
        with pytest.raises(ValueError):
            key_switch(poly, evk, 2, small_ring)

    def test_galois_key_semantics(self, small_ring, small_keys):
        """Switching with a galois key targets s(X^g)."""
        level = 3
        galois_elt = pow(5, 2, 2 * small_ring.n)
        evk = small_keys.gen_galois_key(galois_elt)
        base = small_ring.base_q(level)
        a = _uniform(small_ring, base, 8)
        ks_b, ks_a = key_switch(a, evk, level, small_ring)
        s_g = (small_keys.secret.poly.from_ntt()
               .galois(galois_elt).to_ntt().restrict(base))
        s = small_keys.secret.restricted(base)
        got = ks_b.sub(ks_a.mul(s))
        want = a.mul(s_g)
        err = crt_reconstruct(got.sub(want).from_ntt()).astype(np.float64)
        import math
        q_level = math.prod(p.value for p in base)
        assert np.max(np.abs(err)) < q_level / 2 ** 20

    def test_all_dnum_slices_used(self, small_ring, small_keys,
                                  small_params):
        evk = small_keys.gen_relinearization_key()
        assert evk.dnum == small_params.dnum
        # at max level, beta == dnum: every slice participates
        blocks = small_ring.decomposition_blocks(small_params.l)
        assert len(blocks) == small_params.dnum
