"""Tests for the noise-budget estimator (a-priori vs measured)."""

import numpy as np
import pytest

from repro.ckks.noise import NoiseEstimate, NoiseEstimator
from tests.conftest import encrypt_message

SCALE = 2.0 ** 40


class TestEstimateAlgebra:
    @pytest.fixture()
    def est(self, small_params):
        return NoiseEstimator(small_params)

    def test_fresh_positive(self, est, small_params):
        fresh = est.fresh(SCALE)
        assert fresh.noise > 0
        assert fresh.level == small_params.l
        assert fresh.precision_bits > 20

    def test_add_sums_noise(self, est):
        a = est.fresh(SCALE)
        combined = est.add(a, a)
        assert combined.noise == pytest.approx(2 * a.noise)
        assert combined.scale == a.scale

    def test_multiply_squares_scale(self, est):
        a = est.fresh(SCALE)
        prod = est.multiply(a, a)
        assert prod.scale == pytest.approx(SCALE * SCALE)
        assert prod.noise > a.noise

    def test_rescale_divides(self, est, small_params):
        a = est.fresh(SCALE)
        prod = est.multiply(a, a)
        scaled = est.rescale(prod)
        assert scaled.level == prod.level - 1
        assert scaled.scale == pytest.approx(
            prod.scale / 2.0 ** small_params.scale_bits)
        assert scaled.noise < prod.noise

    def test_rescale_at_zero_rejected(self, est):
        bottom = NoiseEstimate(noise=1.0, scale=SCALE, level=0)
        with pytest.raises(ValueError):
            est.rescale(bottom)

    def test_rotate_adds_keyswitch_term(self, est):
        a = est.fresh(SCALE)
        rotated = est.rotate(a)
        assert rotated.noise == pytest.approx(
            a.noise + est.keyswitch_noise(a.level))

    def test_precision_degrades_with_depth(self, est):
        state = est.fresh(SCALE)
        precisions = [state.precision_bits]
        for _ in range(4):
            state = est.rescale(est.multiply(state, est.fresh(SCALE)))
            precisions.append(state.precision_bits)
        assert precisions[-1] < precisions[0]


class TestEstimateVsMeasured:
    """The a-priori estimate must upper-bound (within ~8 bits) the truth."""

    def _measured_bits(self, ev, keys, ct, reference):
        return NoiseEstimator.measured_precision_bits(
            ev, ct, keys.secret, reference)

    def test_fresh_ciphertext(self, small_evaluator, small_keys,
                              small_encoder, small_params, rng):
        z = rng.normal(size=small_params.slots_max) + 0j
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        est = NoiseEstimator(small_params)
        predicted = est.fresh(SCALE).precision_bits
        measured = self._measured_bits(small_evaluator, small_keys, ct, z)
        # estimator is conservative: predicts less precision than real
        assert predicted <= measured + 1
        assert measured - predicted < 15

    def test_after_multiply(self, small_evaluator, small_keys,
                            small_encoder, small_params, rng):
        z = rng.normal(size=small_params.slots_max) * 0.5 + 0j
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        est = NoiseEstimator(small_params, message_bound=0.5)
        prod_ct = small_evaluator.multiply(ct, ct)
        predicted = est.rescale(est.multiply(est.fresh(SCALE),
                                             est.fresh(SCALE)))
        measured = self._measured_bits(small_evaluator, small_keys,
                                       prod_ct, z ** 2)
        assert predicted.precision_bits <= measured + 2

    def test_depth_tracking_matches(self, small_evaluator, small_keys,
                                    small_encoder, small_params, rng):
        """Estimator level bookkeeping mirrors the real evaluator."""
        z = rng.normal(size=small_params.slots_max) * 0.3 + 0j
        ct = encrypt_message(small_keys, small_encoder, z, SCALE)
        est = NoiseEstimator(small_params, message_bound=0.3)
        state = est.fresh(SCALE)
        for _ in range(3):
            ct = small_evaluator.multiply(ct, ct)
            state = est.rescale(est.multiply(state, state))
        assert ct.level == state.level
        assert abs(ct.scale - state.scale) / state.scale < 1e-3
