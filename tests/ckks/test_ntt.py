"""Tests for the negacyclic NTT (the functional NTTU)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.modmath import mul_mod
from repro.ckks.ntt import (
    NttContext,
    bit_reverse_indices,
    negacyclic_convolution_reference,
)
from repro.ckks.primes import ntt_friendly_primes


@pytest.fixture(scope="module")
def ctx256():
    q = ntt_friendly_primes(50, 1, 256)[0]
    return NttContext.create(q, 256)


class TestBitReverse:
    def test_small(self):
        assert list(bit_reverse_indices(8)) == [0, 4, 2, 6, 1, 5, 3, 7]

    def test_involution(self):
        rev = bit_reverse_indices(64)
        assert np.array_equal(rev[rev], np.arange(64))


class TestContextCreation:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NttContext.create(97, 12)

    def test_rejects_bad_psi(self):
        q = ntt_friendly_primes(40, 1, 64)[0]
        with pytest.raises(ValueError):
            NttContext.create(q, 64, psi=2)

    def test_n_inv(self, ctx256):
        q = ctx256.modulus.value
        assert (int(ctx256.n_inv) * 256) % q == 1


class TestRoundtrip:
    @pytest.mark.parametrize("n", [4, 16, 128, 1024])
    @pytest.mark.parametrize("bits", [30, 45, 58])
    def test_forward_inverse(self, n, bits):
        q = ntt_friendly_primes(bits, 1, n)[0]
        ctx = NttContext.create(q, n)
        rng = np.random.default_rng(n * bits)
        a = rng.integers(0, q, size=n, dtype=np.uint64)
        assert np.array_equal(ctx.inverse(ctx.forward(a)), a)

    def test_inverse_forward(self, ctx256):
        rng = np.random.default_rng(9)
        a = rng.integers(0, ctx256.modulus.value, size=256, dtype=np.uint64)
        assert np.array_equal(ctx256.forward(ctx256.inverse(a)), a)

    def test_shape_validation(self, ctx256):
        with pytest.raises(ValueError):
            ctx256.forward(np.zeros(128, dtype=np.uint64))

    def test_input_not_mutated(self, ctx256):
        rng = np.random.default_rng(10)
        a = rng.integers(0, ctx256.modulus.value, size=256, dtype=np.uint64)
        saved = a.copy()
        ctx256.forward(a)
        assert np.array_equal(a, saved)


class TestConvolution:
    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_matches_schoolbook(self, n):
        q = ntt_friendly_primes(45, 1, n)[0]
        ctx = NttContext.create(q, n)
        rng = np.random.default_rng(n)
        a = rng.integers(0, q, size=n, dtype=np.uint64)
        b = rng.integers(0, q, size=n, dtype=np.uint64)
        via_ntt = ctx.inverse(mul_mod(ctx.forward(a), ctx.forward(b),
                                      ctx.modulus))
        assert np.array_equal(via_ntt,
                              negacyclic_convolution_reference(a, b, q))

    def test_x_times_x_pow_nminus1_is_minus_one(self):
        """X * X^(N-1) = X^N = -1 in the negacyclic ring."""
        n = 64
        q = ntt_friendly_primes(40, 1, n)[0]
        ctx = NttContext.create(q, n)
        x = np.zeros(n, dtype=np.uint64)
        x[1] = 1
        x_last = np.zeros(n, dtype=np.uint64)
        x_last[n - 1] = 1
        prod = ctx.inverse(mul_mod(ctx.forward(x), ctx.forward(x_last),
                                   ctx.modulus))
        expected = np.zeros(n, dtype=np.uint64)
        expected[0] = q - 1
        assert np.array_equal(prod, expected)

    def test_multiply_by_one(self, ctx256):
        rng = np.random.default_rng(11)
        q = ctx256.modulus.value
        a = rng.integers(0, q, size=256, dtype=np.uint64)
        one = np.zeros(256, dtype=np.uint64)
        one[0] = 1
        prod = ctx256.inverse(mul_mod(ctx256.forward(a),
                                      ctx256.forward(one), ctx256.modulus))
        assert np.array_equal(prod, a)


class TestLinearity:
    @given(st.integers(min_value=0, max_value=2**45))
    @settings(max_examples=50, deadline=None)
    def test_scalar_linearity(self, scalar):
        n = 32
        q = ntt_friendly_primes(45, 1, n)[0]
        ctx = NttContext.create(q, n)
        rng = np.random.default_rng(5)
        a = rng.integers(0, q, size=n, dtype=np.uint64)
        s = scalar % q
        scaled = (a.astype(object) * s % q).astype(np.uint64)
        fwd_scaled = ctx.forward(scaled)
        scaled_fwd = (ctx.forward(a).astype(object) * s % q).astype(
            np.uint64)
        assert np.array_equal(fwd_scaled, scaled_fwd)

    def test_additive(self):
        n = 64
        q = ntt_friendly_primes(40, 1, n)[0]
        ctx = NttContext.create(q, n)
        rng = np.random.default_rng(6)
        a = rng.integers(0, q, size=n, dtype=np.uint64)
        b = rng.integers(0, q, size=n, dtype=np.uint64)
        lhs = ctx.forward((a.astype(object) + b) % q)
        rhs = (ctx.forward(a).astype(object) + ctx.forward(b)) % q
        assert np.array_equal(lhs.astype(object), rhs)
