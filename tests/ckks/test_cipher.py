"""Tests for the Plaintext / Ciphertext value types."""

import numpy as np
import pytest

from repro.ckks.cipher import Ciphertext, Plaintext
from repro.ckks.rns import RnsPolynomial


def _poly(ring, level, is_ntt=True):
    base = ring.base_q(level)
    return RnsPolynomial.zeros(base, ring.n, is_ntt=is_ntt)


class TestPlaintext:
    def test_level_from_base(self, small_ring):
        pt = Plaintext(poly=_poly(small_ring, 3), scale=2.0 ** 40)
        assert pt.level == 3
        assert pt.n == small_ring.n


class TestCiphertext:
    def test_component_base_mismatch(self, small_ring):
        with pytest.raises(ValueError):
            Ciphertext(b=_poly(small_ring, 2), a=_poly(small_ring, 3),
                       scale=1.0, n_slots=4)

    def test_component_domain_mismatch(self, small_ring):
        with pytest.raises(ValueError):
            Ciphertext(b=_poly(small_ring, 2, is_ntt=True),
                       a=_poly(small_ring, 2, is_ntt=False),
                       scale=1.0, n_slots=4)

    def test_ids_unique(self, small_ring):
        ct1 = Ciphertext(b=_poly(small_ring, 1), a=_poly(small_ring, 1),
                         scale=1.0, n_slots=4)
        ct2 = Ciphertext(b=_poly(small_ring, 1), a=_poly(small_ring, 1),
                         scale=1.0, n_slots=4)
        assert ct1.ct_id != ct2.ct_id

    def test_clone_is_deep(self, small_ring):
        ct = Ciphertext(b=_poly(small_ring, 1), a=_poly(small_ring, 1),
                        scale=1.0, n_slots=4)
        copy = ct.clone()
        copy.b.residues[0, 0] = np.uint64(7)
        assert ct.b.residues[0, 0] == 0

    def test_domain_roundtrip(self, small_ring):
        ct = Ciphertext(b=_poly(small_ring, 2), a=_poly(small_ring, 2),
                        scale=1.0, n_slots=4)
        assert ct.is_ntt
        coeff = ct.from_ntt()
        assert not coeff.is_ntt
        back = coeff.to_ntt()
        assert back.is_ntt
        assert np.array_equal(back.b.residues, ct.b.residues)

    def test_level_property(self, small_ring):
        ct = Ciphertext(b=_poly(small_ring, 4), a=_poly(small_ring, 4),
                        scale=1.0, n_slots=4)
        assert ct.level == 4
