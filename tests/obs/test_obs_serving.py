"""End-to-end observability through the serving stack.

A traced two-tenant batched run must produce a parent/child-consistent
span tree covering scheduler -> supervisor -> executor -> kernel,
calibration entries for every executed plan, per-tenant counters in the
typed health snapshot — and, with everything disabled, byte-identical
output blobs to an untraced run.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import obs
from repro.obs import kernel as obs_kernel
from repro.obs.trace import Tracer, validate_chrome_trace
from repro.runtime import Program
from repro.service import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    HealthSnapshot,
    JobRequest,
    PrecisionAtRisk,
    ServiceConfig,
    SupervisionConfig,
    TenantHealth,
)

AMOUNTS = (1, 2, 3)


def stencil_program(amounts, name, n_slots=8):
    prog = Program(n_slots=n_slots, name=name)
    x = prog.input("x")
    acc = x * 0.5
    for amount in amounts:
        acc = acc + x.rotate(amount) * 0.25
    prog.output("out", acc)
    return prog


def serve(server, requests, return_exceptions=True):
    async def run():
        server.scheduler.start()
        try:
            return await asyncio.gather(
                *(server.scheduler.submit(r) for r in requests),
                return_exceptions=return_exceptions)
        finally:
            await server.scheduler.stop()

    return asyncio.run(run())


def onboard(server, client, amounts=AMOUNTS):
    server.open_session(client.tenant_id, client.hello_blob())
    server.register_keys(client.tenant_id, relin=client.relin_blob(),
                         galois=client.galois_blob(amounts))


def two_tenant_requests(make_client, server):
    requests = []
    for tenant, seed in (("alice", 7), ("bob", 13)):
        client = make_client(tenant, seed)
        onboard(server, client)
        blob = client.encrypt_blob(np.linspace(-0.3, 0.3, 8))
        requests += [
            JobRequest(tenant, stencil_program(AMOUNTS, f"{tenant}-s0"),
                       {"x": blob}),
            JobRequest(tenant, stencil_program(AMOUNTS[:2],
                                               f"{tenant}-s1"),
                       {"x": blob}),
        ]
    return requests


class TestTracedServing:
    @pytest.fixture()
    def traced_run(self, make_server, make_client, obs_disabled):
        obs.enable()
        tracer = Tracer()
        server = make_server(ServiceConfig(
            workers=2, max_batch=8, batch_window_s=0.05,
            max_job_seconds=5.0, tracer=tracer))
        requests = two_tenant_requests(make_client, server)
        results = serve(server, requests, return_exceptions=False)
        obs.disable()
        yield server, tracer, requests, results
        server.shutdown()

    def test_span_tree_covers_every_pipeline_layer(self, traced_run):
        server, tracer, requests, results = traced_run
        assert all(result.attempts == 1 for result in results)
        job_roots = [span for span in tracer.roots
                     if span.cat == "job"]
        assert {span.name for span in job_roots} == {
            f"{r.tenant}/{r.program.name}" for r in requests}
        for root in job_roots:
            names = [child.name for child in root.children]
            assert names[:1] == ["queue_wait"]
            assert "admit" in names
            assert "decode_inputs" in names
            assert "supervise" in names
            [supervise] = [c for c in root.children
                           if c.name == "supervise"]
            [attempt] = supervise.children
            assert attempt.name == "execute_attempt"
            assert attempt.args["attempt"] == 1
            ops = [c for c in attempt.children if c.cat == "op"]
            assert ops, "executor emitted no op spans"
            op_names = {op.name for op in ops}
            assert "input" in op_names
            assert "hrot" in op_names
            # kernel layer: executor ops that did kernel work carry the
            # tally deltas (constant encode = one NTT pass per limb)
            assert any("ntt_forward" in op.args for op in ops)
            for op in ops:
                if op.name == "hrot":
                    assert "rotation" in op.args
            # every span is closed — no unfinished leftovers
            for span in [root, supervise, attempt, *ops]:
                assert span.t1 is not None
        batch_roots = [span for span in tracer.roots
                       if span.name == "batch_assembly"]
        assert batch_roots
        assert sum(span.args["admitted"] for span in batch_roots) \
            == len(requests)
        # both tenants rotate distinct blobs, so coalescing groups per
        # tenant (same tenant, same digest, two jobs each) — and the
        # hoisted galois raise done here carries the kernel deltas that
        # the seeded per-job hrot spans consequently lack
        group_spans = [child for span in batch_roots
                       for child in span.children
                       if child.name == "coalesce_group"]
        assert {span.args["tenant"] for span in group_spans} \
            == {"alice", "bob"}
        for group in group_spans:
            assert group.args["members"] == 2
            assert group.args["ntt_forward"] > 0
            assert group.args["moddown"] > 0

    def test_every_op_span_scores_numeric_health(self, traced_run):
        """Each executed op span carries the analytic noise state, and
        each completed attempt the terminal headroom."""
        _, tracer, _, results = traced_run
        attempts = ops = 0
        for root in [s for s in tracer.roots if s.cat == "job"]:
            [supervise] = [c for c in root.children
                           if c.name == "supervise"]
            for attempt in supervise.children:
                assert attempt.args["headroom_bits"] > 0
                attempts += 1
                for op in [c for c in attempt.children
                           if c.cat == "op"]:
                    assert "noise_bits" in op.args
                    assert "headroom_bits" in op.args
                    ops += 1
        assert attempts == len(results) and ops > 0
        # the span tag agrees with the JobResult the tenant saw
        for result in results:
            assert result.headroom_bits is not None
            assert result.precision_at_risk is None

    def test_chrome_export_is_schema_valid(self, traced_run, tmp_path):
        _, tracer, _, _ = traced_run
        trace = tracer.chrome_trace()
        assert validate_chrome_trace(trace) == []
        path = tmp_path / "serving_trace.json"
        assert tracer.write(path) == len(trace["traceEvents"])

    def test_metrics_text_reports_every_plan_calibration(
            self, traced_run):
        server, _, requests, _ = traced_run
        summary = server.scheduler.calibration.summary()
        calibrated = {name for stats in summary.values()
                      for name in stats["programs"]}
        assert {r.program.name for r in requests} <= calibrated
        text = server.metrics_text()
        assert 'fhe_jobs_total{tenant="alice",outcome="completed"} 2' \
            in text
        assert 'fhe_jobs_total{tenant="bob",outcome="completed"} 2' \
            in text
        assert "fhe_plan_cache_total" in text
        assert "fhe_calibration_ratio" in text
        assert "fhe_job_queue_wait_seconds_count" in text
        # the gated wire-codec counters were live during the run
        assert 'fhe_wire_blobs_total{kind="CIPHERTEXT",' in text

    def test_health_is_typed_with_tenant_and_cache_counters(
            self, traced_run):
        server, _, _, _ = traced_run
        snapshot = server.scheduler.health()
        assert isinstance(snapshot, HealthSnapshot)
        assert isinstance(snapshot.tenants.get("alice"), TenantHealth)
        assert snapshot.tenants["alice"].jobs_completed == 2
        assert snapshot.tenants["bob"].jobs_completed == 2
        health = server.health()
        # original dict shape preserved (the PR-6 contract)...
        for key in ("queue_depth", "backlog_jobs", "backlog_seconds",
                    "max_queue_jobs", "backlog_budget_s", "tenants",
                    "counters", "registry"):
            assert key in health
        assert health["counters"]["jobs_completed"] == 4
        assert health["tenants"]["alice"]["consecutive_failures"] == 0
        # ...and the additive observability fields ride along
        assert health["tenants"]["alice"]["jobs_completed"] == 2
        # 4 structurally distinct programs -> 2 unique plans, reused
        # across tenants: hits + misses == lookups, misses == plans
        assert health["plan_cache"]["misses"] == 2
        assert health["plan_cache"]["hits"] == 2
        assert health["calibration"]["plans"] == 2
        assert health["calibration"]["records"] == 4


class TestRetrySpans:
    def test_backoff_is_recorded_with_attempt_and_delay(
            self, make_server, make_client):
        tracer = Tracer()
        plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT, tenant="alice",
                                    program="flaky")], seed=11)
        server = make_server(ServiceConfig(
            workers=1, tracer=tracer, fault_plan=plan,
            supervision=SupervisionConfig(
                deadline_multiplier=0.0, deadline_floor_s=10.0,
                max_retries=2, backoff_base_s=0.01, backoff_cap_s=0.02,
                seed=7)))
        client = make_client("alice", 7)
        onboard(server, client)
        request = JobRequest("alice", stencil_program((1,), "flaky"),
                             {"x": client.encrypt_blob(np.ones(8) * 0.1)})
        [result] = serve(server, [request], return_exceptions=False)
        server.shutdown()
        assert result.attempts == 2
        [root] = [s for s in tracer.roots if s.cat == "job"]
        [supervise] = [c for c in root.children if c.name == "supervise"]
        assert supervise.args["attempts"] == 2
        names = [c.name for c in supervise.children]
        assert names == ["execute_attempt", "retry_backoff",
                         "execute_attempt"]
        first, backoff, second = supervise.children
        assert first.args["error"] == "InjectedTransient"
        assert backoff.args["retry"] == 1
        assert backoff.args["error"] == "InjectedTransient"
        assert 0.0 <= backoff.args["delay_s"] <= 0.02
        assert backoff.duration_s >= backoff.args["delay_s"] * 0.5
        assert second.args["attempt"] == 2
        assert "error" not in second.args


class TestDisabledModeIdentity:
    def test_untraced_disabled_run_is_byte_identical(
            self, make_server, make_client, obs_disabled):
        """Tracing + gated instruments must never change a result bit."""
        client = make_client("alice", 7)
        blob = client.encrypt_blob(np.linspace(-0.2, 0.2, 8))
        request = JobRequest("alice", stencil_program(AMOUNTS, "ident"),
                             {"x": blob})

        def run_once(config):
            server = make_server(config)
            onboard(server, client)
            [result] = serve(server, [request], return_exceptions=False)
            server.shutdown()
            return result.outputs

        plain = run_once(ServiceConfig(workers=1, max_job_seconds=5.0))
        obs.enable()
        traced = run_once(ServiceConfig(workers=1, max_job_seconds=5.0,
                                        tracer=Tracer()))
        obs.disable()
        assert plain.keys() == traced.keys()
        for name in plain:
            assert plain[name] == traced[name]

    def test_kernel_tallies_are_inert_when_disabled(self, small_ring,
                                                    obs_disabled):
        obs_kernel.reset()
        prime = small_ring.q_primes[0]
        data = np.arange(small_ring.n, dtype=np.uint64) % prime.value
        prime.ntt.forward(data)
        prime.ntt.inverse(data)
        assert all(count == 0 for count in obs_kernel.snapshot().values())

    def test_kernel_tallies_count_when_enabled(self, small_ring,
                                               obs_disabled):
        obs.enable()
        obs_kernel.reset()
        prime = small_ring.q_primes[0]
        data = np.arange(small_ring.n, dtype=np.uint64) % prime.value
        before = obs_kernel.snapshot()
        prime.ntt.forward(data)
        prime.ntt.forward(data)
        prime.ntt.inverse(data)
        delta = obs_kernel.delta(before)
        assert delta["ntt_forward"] == 2
        assert delta["ntt_inverse"] == 1
        base = small_ring.base_qp(small_ring.max_level)
        matrix = np.stack([np.arange(small_ring.n, dtype=np.uint64)
                           % p.value for p in base])
        before = obs_kernel.snapshot()
        small_ring.batched_ntt(base).forward(matrix)
        assert obs_kernel.delta(before)["ntt_forward"] == len(base)
        obs.disable()


class TestNumericHealthServing:
    """The noise axis through the serving layer: headroom scoring,
    PrecisionAtRisk surfacing, journal lifecycle, memory gauges."""

    def run_jobs(self, make_server, make_client, config):
        server = make_server(config)
        client = make_client("alice", 7)
        onboard(server, client)
        blob = client.encrypt_blob(np.linspace(-0.3, 0.3, 8))
        requests = [JobRequest("alice",
                               stencil_program(AMOUNTS, f"job{i}"),
                               {"x": blob}) for i in range(2)]
        results = serve(server, requests, return_exceptions=False)
        return server, results

    def test_headroom_scored_without_tracing(self, make_server,
                                             make_client):
        """Numeric health is always on — no tracer required."""
        server, results = self.run_jobs(
            make_server, make_client,
            ServiceConfig(workers=1, max_job_seconds=5.0))
        for result in results:
            assert result.headroom_bits is not None
            assert result.headroom_bits > 0
            assert result.precision_at_risk is None
        health = server.health()
        numeric = health["numeric_health"]
        assert numeric["jobs_at_risk"] == 0
        assert numeric["min_headroom_bits"] == pytest.approx(
            min(r.headroom_bits for r in results), abs=1e-2)
        assert numeric["tenants"]["alice"] > 0
        assert health["tenants"]["alice"]["precision_at_risk"] == 0
        assert health["tenants"]["alice"]["min_headroom_bits"] > 0
        server.shutdown()

    def test_precision_at_risk_surfaces_everywhere(self, make_server,
                                                   make_client):
        """A floor above the achievable headroom trips the warning in
        the JobResult, health(), and the per-tenant counters — and the
        job still completes (non-fatal)."""
        server, results = self.run_jobs(
            make_server, make_client,
            ServiceConfig(workers=1, max_job_seconds=5.0,
                          min_headroom_bits=10_000.0))
        for result in results:
            risk = result.precision_at_risk
            assert isinstance(risk, PrecisionAtRisk)
            assert isinstance(risk, Warning)  # non-fatal by type
            assert risk.tenant == "alice"
            assert risk.floor_bits == 10_000.0
            assert risk.headroom_bits == pytest.approx(
                result.headroom_bits)
            payload = risk.as_dict()
            assert payload["worst_node"] is not None
            assert "below the" in str(risk)
            assert result.outputs  # the answer still shipped
        health = server.health()
        assert health["numeric_health"]["jobs_at_risk"] == len(results)
        assert health["counters"]["precision_at_risk_jobs"] \
            == len(results)
        assert health["tenants"]["alice"]["precision_at_risk"] \
            == len(results)
        server.shutdown()

    def test_floor_none_disables_the_check(self, make_server,
                                           make_client):
        server, results = self.run_jobs(
            make_server, make_client,
            ServiceConfig(workers=1, max_job_seconds=5.0,
                          min_headroom_bits=None))
        assert all(r.precision_at_risk is None for r in results)
        assert all(r.headroom_bits is not None for r in results)
        assert server.health()["numeric_health"]["floor_bits"] is None
        server.shutdown()

    def test_metrics_export_noise_and_memory_instruments(
            self, make_server, make_client):
        server, _ = self.run_jobs(
            make_server, make_client,
            ServiceConfig(workers=1, max_job_seconds=5.0))
        text = server.metrics_text()
        assert 'fhe_noise_headroom_bits_count{tenant="alice"} 2' in text
        assert 'fhe_noise_min_headroom_bits{tenant="alice"}' in text
        assert 'fhe_registry_bytes{tenant="alice"}' in text
        assert "fhe_plan_cache_entries 1" in text
        # the gauge agrees with the registry's own accounting
        expected = server.registry.bytes_by_tenant()["alice"]
        assert f'fhe_registry_bytes{{tenant="alice"}} {expected}' in text
        assert expected > 0
        assert server.registry.stats()["bytes_by_tenant"]["alice"] \
            == expected
        server.shutdown()

    def test_journal_records_full_lifecycle(self, make_server,
                                            make_client):
        import io

        from repro.obs.events import (JobJournal, read_journal,
                                      validate_journal)

        sink = io.StringIO()
        journal = JobJournal(sink)
        server, results = self.run_jobs(
            make_server, make_client,
            ServiceConfig(workers=1, max_job_seconds=5.0,
                          events=journal))
        records = read_journal(io.StringIO(sink.getvalue()))
        assert validate_journal(records) == []
        by_event = {}
        for rec in records:
            by_event.setdefault(rec["event"], []).append(rec)
        assert len(by_event["submitted"]) == len(results)
        assert len(by_event["started"]) == len(results)
        assert len(by_event["completed"]) == len(results)
        for rec in by_event["completed"]:
            assert rec["outcome"] == "ok"
            assert rec["headroom_bits"] > 0
            assert "precision_at_risk" not in rec  # None fields drop
        server.shutdown()

    def test_journal_records_failures(self, make_server, make_client):
        import io

        from repro.obs.events import JobJournal, read_journal

        sink = io.StringIO()
        plan = FaultPlan([FaultSpec(FaultKind.CRASH, tenant="alice",
                                    program="doomed")], seed=3)
        server = make_server(ServiceConfig(
            workers=1, max_job_seconds=5.0, fault_plan=plan,
            events=JobJournal(sink),
            supervision=SupervisionConfig(max_retries=0,
                                          deadline_floor_s=10.0)))
        client = make_client("alice", 7)
        onboard(server, client)
        request = JobRequest("alice", stencil_program((1,), "doomed"),
                             {"x": client.encrypt_blob(np.ones(8) * 0.1)})
        [result] = serve(server, [request], return_exceptions=True)
        assert isinstance(result, Exception)
        records = read_journal(io.StringIO(sink.getvalue()))
        failed = [r for r in records if r["event"] == "failed"]
        assert len(failed) == 1
        assert failed[0]["outcome"] == "InjectedCrash"
        server.shutdown()
