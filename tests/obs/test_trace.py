"""Span tracer: tree integrity, Chrome export, schema validation."""

from __future__ import annotations

import json
import threading

from repro.obs.trace import Tracer, main, validate_chrome_trace


class FakeClock:
    """Deterministic monotonic clock advanced by hand."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestSpans:
    def test_nesting_builds_the_tree(self):
        tracer = Tracer()
        root = tracer.span("job", cat="job", tenant="alice")
        child = root.child("admit", cat="sched")
        grandchild = child.child("plan")
        grandchild.end()
        child.end()
        root.end()
        assert tracer.roots == [root]
        assert root.children == [child]
        assert child.children == [grandchild]
        assert grandchild.parent is child
        assert child.parent is root

    def test_durations_from_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.span("work")
        clock.now += 2.5
        span.end()
        assert span.duration_s == 2.5
        # idempotent end: the first end sticks
        clock.now += 10.0
        span.end()
        assert span.duration_s == 2.5

    def test_open_span_has_no_duration(self):
        span = Tracer().span("open")
        assert span.duration_s is None

    def test_context_manager_tags_errors(self):
        tracer = Tracer()
        try:
            with tracer.span("boom") as span:
                raise RuntimeError("nope")
        except RuntimeError:
            pass
        assert span.t1 is not None
        assert span.args["error"] == "RuntimeError"

    def test_annotate_merges_args(self):
        span = Tracer().span("s", level=3)
        span.annotate(rotation=4, level=2)
        assert span.args == {"level": 2, "rotation": 4}

    def test_cross_thread_children_keep_explicit_parent(self):
        """A child opened on a pool thread parents correctly and gets
        its own tid in the export."""
        tracer = Tracer()
        root = tracer.span("job")
        holder = {}

        def worker() -> None:
            child = root.child("execute")
            child.end()
            holder["child"] = child

        thread = threading.Thread(target=worker, name="pool-thread")
        thread.start()
        thread.join()
        root.end()
        child = holder["child"]
        assert child.parent is root
        assert child.tid != root.tid
        trace = tracer.chrome_trace()
        thread_names = {e["args"]["name"]
                        for e in trace["traceEvents"]
                        if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "pool-thread" in thread_names


class TestChromeExport:
    def test_event_shape_and_parent_links(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        root = tracer.span("job", cat="job")
        clock.now += 0.001
        child = root.child("step", cat="sched", level=3)
        clock.now += 0.002
        child.end()
        root.end()
        trace = tracer.chrome_trace()
        assert validate_chrome_trace(trace) == []
        spans = {e["args"]["id"]: e for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        root_ev = spans[root.span_id]
        child_ev = spans[child.span_id]
        assert "parent" not in root_ev["args"]
        assert child_ev["args"]["parent"] == root.span_id
        assert child_ev["args"]["level"] == 3
        assert child_ev["ts"] == 1000.0   # µs after the epoch
        assert child_ev["dur"] == 2000.0
        assert root_ev["dur"] == 3000.0

    def test_unfinished_spans_closed_at_export(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.span("crashed")
        clock.now += 1.0
        trace = tracer.chrome_trace()
        [event] = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["unfinished"] is True
        assert event["dur"] == 1e6
        assert span.t1 is None  # export does not mutate the span

    def test_write_and_cli_roundtrip(self, tmp_path, capsys):
        tracer = Tracer()
        tracer.span("only").end()
        path = tmp_path / "trace.json"
        count = tracer.write(path)
        on_disk = json.loads(path.read_text())
        assert len(on_disk["traceEvents"]) == count
        assert main([str(path)]) == 0
        assert "valid trace" in capsys.readouterr().out

    def test_cli_rejects_invalid_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "Q"}]}))
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_cli_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().err


class TestValidator:
    def test_rejects_structural_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [42]}) != []

    def test_rejects_bad_events(self):
        def problems(event):
            return validate_chrome_trace({"traceEvents": [event]})

        assert problems({"ph": "B", "name": "n"})      # wrong phase
        assert problems({"ph": "X", "name": "", "pid": 1, "tid": 1,
                         "ts": 0, "dur": 0, "cat": "c"})  # empty name
        assert problems({"ph": "X", "name": "n", "pid": "x", "tid": 1,
                         "ts": 0, "dur": 0, "cat": "c"})  # pid type
        assert problems({"ph": "X", "name": "n", "pid": 1, "tid": 1,
                         "ts": -1, "dur": 0, "cat": "c"})  # negative ts
        assert problems({"ph": "X", "name": "n", "pid": 1, "tid": 1,
                         "ts": 0, "dur": 0})              # missing cat
        assert problems({"ph": "M", "name": "weird", "pid": 1,
                         "tid": 1})                        # bad metadata
        assert problems({"ph": "X", "name": "n", "pid": 1, "tid": 1,
                         "ts": 0, "dur": 0, "cat": "c",
                         "args": "nope"})                  # args type

    def test_rejects_dangling_parent_link(self):
        trace = {"traceEvents": [
            {"ph": "X", "name": "n", "pid": 1, "tid": 1, "ts": 0,
             "dur": 1, "cat": "c", "args": {"id": 1, "parent": 99}},
        ]}
        [problem] = validate_chrome_trace(trace)
        assert "parent" in problem
