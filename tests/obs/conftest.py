"""Obs-tier fixtures: server/client factories on the session ring."""

from __future__ import annotations

import pytest

from repro.service.server import FheServer, TenantClient


@pytest.fixture(scope="session")
def boot_probe_setup():
    """N=512 bootstrappable ring for decrypt-probe soundness tests."""
    from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
    from repro.ckks.encoder import Encoder
    from repro.ckks.evaluator import Evaluator
    from repro.ckks.keys import KeyGenerator
    from repro.ckks.params import CkksParams, RingContext
    from repro.ckks.sine import SineConfig

    params = CkksParams.functional(n=1 << 9, l=14, dnum=3, scale_bits=40,
                                   q0_bits=52, p_bits=52, h=32)
    ring = RingContext(params)
    kg = KeyGenerator(ring, seed=11)
    ev = Evaluator(ring)
    bs = Bootstrapper(ev, BootstrapConfig(
        n_slots=4, sine=SineConfig(k_range=12, degree=63,
                                   double_angles=2)))
    bs.generate_keys(kg)
    return ring, kg, ev, bs, Encoder(ring)


@pytest.fixture()
def make_server(small_params, small_ring):
    """Factory for servers sharing the session ring (cheap per-test)."""

    def build(config=None, byte_budget=None) -> FheServer:
        return FheServer(small_params, config=config,
                         byte_budget=byte_budget, ring=small_ring)

    return build


@pytest.fixture(scope="session")
def _client_cache(small_ring):
    return {}


@pytest.fixture()
def make_client(small_ring, _client_cache):
    """Clients keyed by (tenant, seed) — keygen is the expensive part."""

    from repro.service.wire import serialize_params

    params_blob = serialize_params(small_ring.params)

    def build(tenant_id: str, seed: int) -> TenantClient:
        key = (tenant_id, seed)
        if key not in _client_cache:
            _client_cache[key] = TenantClient(tenant_id, params_blob,
                                              seed=seed, ring=small_ring)
        return _client_cache[key]

    return build


@pytest.fixture()
def obs_disabled():
    """Guarantee the gated fast path is off before and after a test."""
    from repro import obs

    obs.disable()
    yield
    obs.disable()
