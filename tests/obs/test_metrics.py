"""Metrics registry: concurrency exactness, histograms, exposition."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import metrics as metrics_mod
from repro.obs.metrics import MetricsRegistry, default_registry


class TestCounterConcurrency:
    def test_four_thread_hammer_is_exact(self):
        """Concurrent inc() must not lose a single increment."""
        registry = MetricsRegistry()
        counter = registry.counter("hits", "hammered", ("worker",))
        per_thread = 5000

        def hammer(worker: int) -> None:
            for _ in range(per_thread):
                counter.inc(worker=worker)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for worker in range(4):
            assert counter.value(worker=worker) == per_thread
        assert counter.total() == 4 * per_thread

    def test_histogram_hammer_is_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "hammered", buckets=(0.5, 1.0))
        per_thread = 2000

        def hammer() -> None:
            for index in range(per_thread):
                hist.observe(0.25 if index % 2 else 0.75)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.snapshot()["count"] == 4 * per_thread


class TestCounter:
    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_label_set_must_match_declaration(self):
        counter = MetricsRegistry().counter("c", labelnames=("tenant",))
        with pytest.raises(ValueError, match="labels"):
            counter.inc()
        with pytest.raises(ValueError, match="labels"):
            counter.inc(tenant="a", extra="b")

    def test_collect_renders_sorted_samples(self):
        counter = MetricsRegistry().counter("jobs", "help text",
                                            ("tenant",))
        counter.inc(2, tenant="bob")
        counter.inc(tenant="alice")
        assert counter.collect() == [
            "# HELP jobs help text",
            "# TYPE jobs counter",
            'jobs{tenant="alice"} 1',
            'jobs{tenant="bob"} 2',
        ]


class TestGauge:
    def test_set_add_value(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.add(2.5)
        assert gauge.value() == 5.5
        assert 'depth 5.5' in gauge.collect()[-1]


class TestHistogram:
    def test_bucket_placement_and_cumulative_export(self):
        """Samples land in the right bucket; export is cumulative."""
        hist = MetricsRegistry().histogram("lat", "", (),
                                           buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.05, 0.5):
            hist.observe(value)
        lines = hist.collect()
        assert 'lat_bucket{le="0.001"} 1' in lines
        assert 'lat_bucket{le="0.01"} 2' in lines
        assert 'lat_bucket{le="0.1"} 3' in lines
        assert 'lat_bucket{le="+Inf"} 4' in lines
        assert 'lat_count 4' in lines
        assert any(line.startswith("lat_sum ") for line in lines)

    def test_boundary_value_lands_in_its_bucket(self):
        # bisect_left: a sample equal to an upper bound belongs to it.
        hist = MetricsRegistry().histogram("h", "", (), buckets=(1.0, 2.0))
        hist.observe(1.0)
        assert 'h_bucket{le="1"} 1' in hist.collect()

    def test_quantiles_interpolate_within_units(self):
        """Uniform seconds-scale samples: quantiles in the right decade."""
        hist = MetricsRegistry().histogram("lat")
        samples = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for value in samples:
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.100)
        assert 0.02 <= snap["p50"] <= 0.08
        assert 0.05 <= snap["p90"] <= 0.100
        assert snap["p99"] <= 0.100
        assert hist.quantile(1.0) == pytest.approx(0.100)
        assert hist.quantile(0.0) == pytest.approx(0.001)

    def test_empty_snapshot_and_quantile(self):
        hist = MetricsRegistry().histogram("lat")
        assert hist.snapshot()["count"] == 0
        assert hist.snapshot()["p50"] is None
        assert hist.quantile(0.5) is None
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_buckets_must_be_finite_and_nonempty(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("empty", buckets=())
        with pytest.raises(ValueError, match="finite"):
            registry.histogram("inf", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_idempotent_registration_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help", ("a",))
        again = registry.counter("c", "other help", ("a",))
        assert first is again

    def test_conflicting_registration_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("c")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("c", labelnames=("b",))

    def test_render_text_sorts_and_escapes(self):
        registry = MetricsRegistry()
        registry.counter("z_last").inc()
        counter = registry.counter("a_first", 'say "hi"\n', ("label",))
        counter.inc(label='quo"te\\path\nline')
        text = registry.render_text()
        assert text.index("a_first") < text.index("z_last")
        assert r"say \"hi\"\n" in text
        assert r'label="quo\"te\\path\nline"' in text
        assert registry.names() == ["a_first", "z_last"]
        assert registry.get("a_first") is counter
        assert registry.get("missing") is None

    def test_render_text_empty_registry(self):
        assert MetricsRegistry().render_text() == ""

    def test_reset_clears_samples_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        counter.inc()
        gauge.set(2)
        hist.observe(0.5)
        registry.reset()
        assert counter.value() == 0
        assert gauge.value() == 0
        assert hist.snapshot()["count"] == 0
        assert registry.names() == ["c", "g", "h"]

    def test_integer_formatting_drops_the_dot(self):
        assert metrics_mod._format_number(3.0) == "3"
        assert metrics_mod._format_number(float("inf")) == "+Inf"
        assert metrics_mod._format_number(0.25) == "0.25"


class TestGatedFastPath:
    def test_disabled_instruments_record_nothing(self, obs_disabled):
        """The gated registry is a no-op until obs.enable()."""
        gated = default_registry()
        counter = gated.counter("test_gated_counter")
        gauge = gated.gauge("test_gated_gauge")
        hist = gated.histogram("test_gated_hist")
        counter.inc(5)
        gauge.set(7)
        gauge.add(1)
        hist.observe(0.5)
        assert counter.value() == 0
        assert gauge.value() == 0
        assert hist.snapshot()["count"] == 0

    def test_enable_flips_the_gate(self, obs_disabled):
        gated = default_registry()
        counter = gated.counter("test_gated_counter")
        before = counter.value()
        obs.enable()
        assert obs.enabled()
        counter.inc()
        obs.disable()
        counter.inc()  # gate closed again: dropped
        assert not obs.enabled()
        assert counter.value() == before + 1

    def test_always_on_registry_ignores_the_gate(self, obs_disabled):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        assert counter.value() == 1
