"""Calibration recorder: ratio stats, slow-job log, exposition."""

from __future__ import annotations

import pytest

from repro.obs.calibration import CalibrationRecorder


class FakeClock:
    def __init__(self) -> None:
        self.now = 50.0

    def __call__(self) -> float:
        return self.now


class TestRecord:
    def test_ratio_and_summary_stats(self):
        recorder = CalibrationRecorder()
        assert recorder.record("plan-a", 0.001, 0.002,
                               program="prog") == pytest.approx(2.0)
        recorder.record("plan-a", 0.001, 0.004, program="prog")
        recorder.record("plan-a", 0.001, 0.003, program="prog")
        [stats] = recorder.summary().values()
        assert stats["program"] == "prog"
        assert stats["count"] == 3
        assert stats["ratio_mean"] == pytest.approx(3.0)
        assert stats["ratio_min"] == pytest.approx(2.0)
        assert stats["ratio_max"] == pytest.approx(4.0)
        assert stats["ratio_p50"] == pytest.approx(3.0)
        assert stats["last_actual_s"] == pytest.approx(0.003)
        assert recorder.stats() == {"plans": 1, "records": 3,
                                    "slow_detected": 0}

    def test_shared_plan_key_accumulates_all_program_names(self):
        """Structurally identical programs share a plan key; the entry
        must remember every name (the cross-tenant cache case)."""
        recorder = CalibrationRecorder()
        recorder.record("k", 0.001, 0.002, program="alice-stencil")
        recorder.record("k", 0.001, 0.002, program="bob-stencil")
        [stats] = recorder.summary().values()
        assert stats["programs"] == ["alice-stencil", "bob-stencil"]
        assert stats["program"] == "bob-stencil"  # latest writer

    def test_nonpositive_estimate_rejected(self):
        recorder = CalibrationRecorder()
        with pytest.raises(ValueError, match="estimate_s"):
            recorder.record("k", 0.0, 1.0)

    def test_nonpositive_slow_factor_rejected(self):
        with pytest.raises(ValueError, match="slow_factor"):
            CalibrationRecorder(slow_factor=0.0)

    def test_quantile_window_is_bounded(self):
        recorder = CalibrationRecorder(window=4)
        for index in range(10):
            recorder.record("k", 1.0, float(index + 1))
        [stats] = recorder.summary().values()
        # window keeps the last 4 ratios (7..10); min/max are lifetime
        assert stats["ratio_min"] == pytest.approx(1.0)
        assert stats["ratio_max"] == pytest.approx(10.0)
        assert stats["ratio_p50"] == pytest.approx(8.5)


class TestSlowJobLog:
    def test_detection_uses_factor_and_clock(self):
        clock = FakeClock()
        recorder = CalibrationRecorder(slow_factor=3.0, clock=clock)
        recorder.record("k", 0.010, 0.029, tenant="a", program="p")
        assert recorder.slow_jobs() == []       # 2.9x < 3x: fine
        clock.now = 77.0
        recorder.record("k", 0.010, 0.031, tenant="a", program="p")
        [slow] = recorder.slow_jobs()
        assert slow.plan_key == "k"
        assert slow.tenant == "a"
        assert slow.program == "p"
        assert slow.ratio == pytest.approx(3.1)
        assert slow.at_s == 77.0
        assert recorder.stats()["slow_detected"] == 1

    def test_log_is_bounded_but_counter_is_not(self):
        recorder = CalibrationRecorder(slow_factor=1.0, max_slow_log=3)
        for index in range(10):
            recorder.record("k", 0.001, 0.005, program=f"p{index}")
        log = recorder.slow_jobs()
        assert len(log) == 3
        assert [slow.program for slow in log] == ["p7", "p8", "p9"]
        assert recorder.stats()["slow_detected"] == 10

    def test_no_factor_means_no_log(self):
        recorder = CalibrationRecorder(slow_factor=None)
        recorder.record("k", 0.001, 100.0)
        assert recorder.slow_jobs() == []


class TestRenderPrometheus:
    def test_exposition_contains_quantiles_and_slow_counter(self):
        recorder = CalibrationRecorder(slow_factor=1.5)
        recorder.record("plan-key-abcdef0123456789", 0.001, 0.002,
                        program="prog")
        text = recorder.render_prometheus()
        assert "# TYPE fhe_calibration_ratio summary" in text
        assert 'program="prog"' in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.9"' in text
        assert "fhe_calibration_ratio_count" in text
        assert "fhe_calibration_slow_jobs_total 1" in text
        # plan label is truncated to a readable 16-char prefix
        assert 'plan="plan-key-abcdef0"' in text

    def test_empty_recorder_still_renders(self):
        text = CalibrationRecorder().render_prometheus()
        assert "fhe_calibration_slow_jobs_total 0" in text
