"""Noise-budget telemetry: tracker algebra, plan profiles, soundness.

The contract under test is one-sided: the tracker may only *over*-count
noise.  ``estimated precision <= measured precision`` (equivalently
``estimated noise >= true decrypted error``) must hold on every
workload, under both modmath backends, and the pessimism must stay
bounded — an estimator that always answers "zero bits left" would be
sound and useless.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.ckks.noise import NoiseEstimate, NoiseEstimator
from repro.obs.noise import NoiseTracker, PrecisionProbe
from repro.runtime import Program
from repro.runtime.executor import execute
from repro.runtime.planner import PlannerConfig, plan_program

SCALE = 2.0 ** 40

#: pessimism ceiling (bits): sound estimates must stay within this many
#: bits of the measured precision on the shallow test workloads
MAX_GAP_BITS = 20.0


@pytest.fixture()
def estimator(small_params) -> NoiseEstimator:
    return NoiseEstimator(small_params)


@pytest.fixture()
def tracker(small_ring) -> NoiseTracker:
    return NoiseTracker.from_ring(small_ring)


def encrypt(small_keys, small_encoder, vec, scale=SCALE):
    pt = small_encoder.encode(np.asarray(vec, dtype=np.complex128), scale)
    return small_keys.encrypt_symmetric(pt.poly, scale, len(vec))


class TestEstimatorAlgebra:
    """The per-op extensions added for whole-plan propagation."""

    def test_sub_matches_add(self, estimator):
        a = estimator.fresh(SCALE)
        b = estimator.fresh(SCALE, level=3)
        assert estimator.sub(a, b) == estimator.add(a, b)

    def test_negate_is_identity(self, estimator):
        a = estimator.fresh(SCALE)
        assert estimator.negate(a) == a

    def test_add_plain_adds_encoding_rounding(self, estimator):
        a = estimator.fresh(SCALE)
        out = estimator.add_plain(a)
        assert out.noise > a.noise
        assert out.scale == a.scale and out.level == a.level

    def test_multiply_integer_scales_noise(self, estimator):
        a = estimator.fresh(SCALE)
        assert estimator.multiply_integer(a, 8).noise == a.noise * 8
        # small values floor at 1: an exact product never reduces noise
        assert estimator.multiply_integer(a, 0).noise == a.noise

    def test_conjugate_matches_rotate(self, estimator):
        a = estimator.fresh(SCALE)
        assert estimator.conjugate(a) == estimator.rotate(a)

    def test_rescale_uses_actual_prime(self, estimator, small_ring):
        a = estimator.fresh(SCALE)
        prime = small_ring.q_primes[a.level].value
        nominal = estimator.rescale(a)
        exact = estimator.rescale(a, prime=prime)
        assert exact.level == a.level - 1
        assert exact.scale == pytest.approx(a.scale / prime)
        assert exact.scale != nominal.scale  # primes are never 2^k

    def test_rescale_at_level_zero_raises(self, estimator):
        a = NoiseEstimate(noise=1.0, scale=SCALE, level=0)
        with pytest.raises(ValueError):
            estimator.rescale(a)

    def test_drop_to_level(self, estimator):
        a = estimator.fresh(SCALE)
        out = estimator.drop_to_level(a, 2)
        assert out.level == 2 and out.noise == a.noise
        with pytest.raises(ValueError):
            estimator.drop_to_level(out, 5)

    def test_bootstrap_dominated_by_approx_error(self, estimator):
        a = NoiseEstimate(noise=1.0, scale=SCALE, level=0)
        out = estimator.bootstrap(a, level=4, scale=SCALE,
                                  approx_error_bits=5.0)
        assert out.level == 4 and out.scale == SCALE
        # 5 bits of approximation error ~ scale * 2^-5 dominates
        assert out.precision_bits < 5.01
        deeper = estimator.bootstrap(a, level=4, scale=SCALE,
                                     approx_error_bits=10.0)
        assert deeper.noise < out.noise


class TestTracker:
    def test_q_values_length_validated(self, small_params):
        with pytest.raises(ValueError, match="entries"):
            NoiseTracker(small_params, q_values=(2.0 ** 50,))

    def test_nominal_chain_default(self, small_params):
        tracker = NoiseTracker(small_params)
        expected = small_params.q0_bits \
            + small_params.l * small_params.scale_bits
        assert tracker.log2_q_chain(small_params.l) == \
            pytest.approx(expected)

    def test_exact_chain_from_ring(self, small_ring, tracker):
        expected = sum(math.log2(p.value) for p in small_ring.q_primes)
        assert tracker.log2_q_chain(small_ring.max_level) == \
            pytest.approx(expected)

    def test_margin_applied_to_scoring(self, small_ring, estimator):
        plain = NoiseTracker.from_ring(small_ring, margin_bits=0.0)
        margined = NoiseTracker.from_ring(small_ring, margin_bits=4.0)
        est = estimator.fresh(SCALE)
        assert margined.noise_bits(est) == \
            pytest.approx(plain.noise_bits(est) + 4.0)
        assert margined.headroom_bits(est) == \
            pytest.approx(plain.headroom_bits(est) - 4.0)

    def test_headroom_identity(self, tracker, estimator):
        est = estimator.fresh(SCALE)
        expected = tracker.log2_q_chain(est.level) \
            - math.log2(est.scale) - tracker.noise_bits(est)
        assert tracker.headroom_bits(est) == pytest.approx(expected)

    def test_score_bakes_in_margin(self, tracker, estimator):
        est = estimator.fresh(SCALE)
        scored = tracker.score(est)
        assert math.log2(scored.noise) == \
            pytest.approx(tracker.noise_bits(est))
        assert (scored.scale, scored.level) == (est.scale, est.level)

    def test_describe_consistency(self, tracker, estimator):
        est = estimator.fresh(SCALE)
        rec = tracker.describe(7, "input", est)
        assert rec.node == 7 and rec.op == "input"
        assert rec.noise_bits == pytest.approx(tracker.noise_bits(est))
        assert rec.precision_bits == \
            pytest.approx(math.log2(est.scale) - rec.noise_bits)
        # the reconstructed estimate carries the margined noise
        est2 = rec.estimate()
        assert math.log2(est2.noise) == pytest.approx(rec.noise_bits)


def stencil_program(n_slots=8, name="stencil"):
    prog = Program(n_slots=n_slots, name=name)
    x = prog.input("x")
    acc = x * 0.5
    for amount in (1, 2):
        acc = acc + x.rotate(amount) * 0.25
    prog.output("out", acc)
    return prog


def square_program(n_slots=8, name="square"):
    prog = Program(n_slots=n_slots, name=name)
    x = prog.input("x")
    y = x * x
    prog.output("out", y * y)
    return prog


class TestPlanProfile:
    def test_every_node_scored(self, small_ring):
        plan = plan_program(stencil_program(),
                            PlannerConfig.from_ring(small_ring))
        profile = NoiseTracker.from_ring(small_ring).profile(plan)
        assert set(profile.nodes) == set(plan.order)
        assert set(profile.outputs) == set(plan.outputs)
        assert profile.terminal_headroom_bits >= \
            profile.min_headroom_bits
        for rec in profile.nodes.values():
            assert math.isfinite(rec.headroom_bits)

    def test_noise_grows_along_stencil(self, small_ring):
        plan = plan_program(stencil_program(),
                            PlannerConfig.from_ring(small_ring))
        profile = NoiseTracker.from_ring(small_ring).profile(plan)
        out = profile.outputs["out"]
        first = profile.nodes[plan.order[0]]
        assert out.noise_bits > first.noise_bits
        assert out.headroom_bits < first.headroom_bits

    def test_pressure_points_list_rescales(self, small_ring):
        plan = plan_program(square_program(),
                            PlannerConfig.from_ring(small_ring))
        profile = NoiseTracker.from_ring(small_ring).profile(plan)
        points = profile.pressure_points()
        assert points, "square chain must rescale"
        assert {p["op"] for p in points} <= {"rescale", "bootstrap"}
        for point in points:
            assert point["node"] in profile.nodes

    def test_bootstrap_nodes_profiled(self, small_ring):
        """A planner-inserted bootstrap resets the tracked state to the
        refreshed level and shows up as a pressure point."""
        prog = Program(n_slots=8, name="deep")
        x = prog.input("x")
        acc = x
        for _ in range(7):  # deeper than l=6 allows without refresh
            acc = acc * acc
        prog.output("out", acc)
        plan = plan_program(prog, PlannerConfig.from_ring(
            small_ring, bootstrap_level=small_ring.max_level - 1))
        assert plan.inserted_bootstraps > 0
        profile = NoiseTracker.from_ring(small_ring).profile(plan)
        boots = [p for p in profile.pressure_points()
                 if p["op"] == "bootstrap"]
        assert len(boots) == plan.inserted_bootstraps
        assert boots[0]["level"] == small_ring.max_level - 1

    def test_sub_neg_conj_branches_profiled(self, small_ring):
        prog = Program(n_slots=8, name="linear_ops")
        x = prog.input("x")
        prog.output("out", -(x - x.rotate(1).conjugate()))
        plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        profile = NoiseTracker.from_ring(small_ring).profile(plan)
        ops = {rec.op for rec in profile.nodes.values()}
        assert {"hsub", "neg", "conj"} <= ops
        # linear ops never drop a level: headroom stays finite and the
        # output is noisier than the fresh input
        out = profile.outputs["out"]
        fresh = profile.nodes[plan.order[0]]
        assert out.level == fresh.level
        assert out.noise_bits > fresh.noise_bits

    def test_profile_is_deterministic(self, small_ring):
        plan = plan_program(stencil_program(),
                            PlannerConfig.from_ring(small_ring))
        tracker = NoiseTracker.from_ring(small_ring)
        a = tracker.profile(plan).as_dict()
        b = tracker.profile(plan).as_dict()
        assert a == b

    def test_as_dict_shape(self, small_ring):
        plan = plan_program(stencil_program(),
                            PlannerConfig.from_ring(small_ring))
        payload = NoiseTracker.from_ring(small_ring).profile(
            plan).as_dict()
        assert {"min_headroom_bits", "terminal_headroom_bits",
                "outputs", "pressure_points"} <= set(payload)
        assert {"node", "op", "level", "scale", "noise_bits",
                "headroom_bits", "precision_bits"} <= \
            set(payload["outputs"]["out"])


class TestSoundness:
    """Decrypt-probe: estimate >= measured error, gap bounded, both
    backends."""

    def probe(self, small_ring, small_keys, small_evaluator):
        tracker = NoiseTracker.from_ring(small_ring)
        return tracker, PrecisionProbe(small_evaluator,
                                       small_keys.secret, tracker)

    def check(self, rec):
        assert rec.sound, (
            f"{rec.workload}: estimate claims "
            f"{rec.estimated_precision_bits:.2f} bits but decrypt "
            f"measured {rec.measured_precision_bits:.2f}")
        assert rec.gap_bits < MAX_GAP_BITS, (
            f"{rec.workload}: {rec.gap_bits:.2f} bits of pessimism")

    def test_fresh(self, each_backend, small_ring, small_keys,
                   small_encoder, small_evaluator, rng):
        tracker, probe = self.probe(small_ring, small_keys,
                                    small_evaluator)
        vec = rng.normal(size=8) * 0.3
        ct = encrypt(small_keys, small_encoder, vec)
        est = tracker.score(tracker.estimator.fresh(SCALE))
        self.check(probe.record("fresh", ct, vec, est))

    def test_hmult_then_rescale(self, each_backend, small_ring,
                                small_keys, small_encoder,
                                small_evaluator, rng):
        tracker, probe = self.probe(small_ring, small_keys,
                                    small_evaluator)
        est = tracker.estimator
        vec = rng.normal(size=8) * 0.3
        ct = encrypt(small_keys, small_encoder, vec)
        prod = small_evaluator.multiply(ct, ct, rescale=False)
        state = est.multiply(est.fresh(SCALE), est.fresh(SCALE))
        self.check(probe.record("hmult", prod, vec * vec,
                                tracker.score(state)))
        prime = small_ring.q_primes[prod.level].value
        scaled = small_evaluator.rescale(prod)
        state = est.rescale(state, prime=prime)
        self.check(probe.record("rescale", scaled, vec * vec,
                                tracker.score(state)))

    def test_rotate_and_conjugate(self, each_backend, small_ring,
                                  small_keys, small_encoder,
                                  small_evaluator, rng):
        tracker, probe = self.probe(small_ring, small_keys,
                                    small_evaluator)
        est = tracker.estimator
        vec = rng.normal(size=8) * 0.3
        ct = encrypt(small_keys, small_encoder, vec)
        rot = small_evaluator.rotate(ct, 2)
        state = est.rotate(est.fresh(SCALE))
        self.check(probe.record("rotate", rot, np.roll(vec, -2),
                                tracker.score(state)))
        conj = small_evaluator.conjugate(ct)
        state = est.conjugate(est.fresh(SCALE))
        self.check(probe.record("conjugate", conj, vec,
                                tracker.score(state)))

    def test_planned_stencil_profile(self, each_backend, small_ring,
                                     small_keys, small_encoder,
                                     small_evaluator, rng):
        """Whole-plan propagation: the executor's fused rotate-reduce
        must stay below the tracker's unfused upper bound."""
        tracker, probe = self.probe(small_ring, small_keys,
                                    small_evaluator)
        plan = plan_program(stencil_program(),
                            PlannerConfig.from_ring(small_ring))
        vec = rng.normal(size=8) * 0.3
        outputs = execute(plan, small_evaluator,
                          {"x": encrypt(small_keys, small_encoder, vec)})
        ref = vec * 0.5 + np.roll(vec, -1) * 0.25 \
            + np.roll(vec, -2) * 0.25
        profile = tracker.profile(plan)
        self.check(probe.record("stencil", outputs["out"], ref,
                                profile.outputs["out"].estimate()))
        assert probe.all_sound()
        assert set(probe.summary()) == {"stencil"}

    def test_bootstrap(self, each_backend, boot_probe_setup):
        """Refreshed ciphertext: the calibrated estimate stays sound."""
        ring, kg, ev, bs, enc = boot_probe_setup
        tracker = NoiseTracker.from_ring(ring)
        probe = PrecisionProbe(ev, kg.secret, tracker)
        z = np.array([0.3, -0.2, 0.1, 0.4])
        ct = ev.drop_to_level(
            kg.encrypt_symmetric(enc.encode(z + 0j, SCALE).poly,
                                 SCALE, 4), 0)
        refreshed = bs.bootstrap(ct)
        est = tracker.estimator
        state = est.bootstrap(
            est.drop_to_level(est.fresh(SCALE), 0),
            refreshed.level, refreshed.scale,
            approx_error_bits=tracker.bootstrap_error_bits)
        rec = probe.record("bootstrap", refreshed, z,
                           tracker.score(state))
        assert rec.sound, (rec.estimated_precision_bits,
                           rec.measured_precision_bits)
        # the default approx_error_bits is deliberately conservative;
        # allow a wider (but still bounded) pessimism window here
        assert rec.gap_bits < 16.0
