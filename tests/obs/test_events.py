"""Job-journal tests: emit/read/validate, crash artifacts, CLI."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs.events import (
    JobJournal,
    main as events_main,
    read_journal,
    validate_journal,
)


def fake_clock(start=1000.0, step=0.5):
    state = {"t": start - step}

    def tick() -> float:
        state["t"] += step
        return state["t"]

    return tick


class TestJournalWriter:
    def test_emit_writes_sorted_json_lines(self):
        sink = io.StringIO()
        journal = JobJournal(sink, clock=fake_clock())
        journal.emit("submitted", "alice", "p1", cost_s=0.25)
        journal.emit("completed", "alice", "p1", outcome="ok")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2 and journal.emitted == 2
        first = json.loads(lines[0])
        assert first == {"event": "submitted", "tenant": "alice",
                         "program": "p1", "cost_s": 0.25, "ts": 1000.0}
        assert list(first) == sorted(first)  # sort_keys on the wire

    def test_unknown_event_raises(self):
        journal = JobJournal(io.StringIO())
        with pytest.raises(ValueError, match="unknown journal event"):
            journal.emit("exploded", "alice", "p1")

    def test_none_fields_dropped(self):
        sink = io.StringIO()
        JobJournal(sink, clock=fake_clock()).emit(
            "started", "alice", "p1", attempt=1, error=None)
        rec = json.loads(sink.getvalue())
        assert "error" not in rec and rec["attempt"] == 1

    def test_path_sink_appends_and_closes(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JobJournal(path, clock=fake_clock()) as journal:
            journal.emit("submitted", "alice", "p1")
        with JobJournal(path, clock=fake_clock(2000.0)) as journal:
            journal.emit("completed", "alice", "p1", outcome="ok")
        records = read_journal(path)
        assert [r["event"] for r in records] == ["submitted",
                                                 "completed"]
        assert validate_journal(records) == []

    def test_concurrent_emit_yields_intact_lines(self):
        sink = io.StringIO()
        journal = JobJournal(sink, clock=fake_clock())

        def work(tenant):
            for i in range(50):
                journal.emit("started", tenant, f"p{i}", attempt=1)

        threads = [threading.Thread(target=work, args=(t,))
                   for t in ("alice", "bob", "carol")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = read_journal(io.StringIO(sink.getvalue()))
        assert len(records) == 150
        # ts stamped under the lock: global write order == ts order
        ts = [r["ts"] for r in records]
        assert ts == sorted(ts)


class TestReader:
    def test_torn_last_line_dropped(self):
        text = ('{"event": "submitted", "tenant": "a", "program": "p",'
                ' "ts": 1.0}\n{"event": "comp')
        records = read_journal(io.StringIO(text))
        assert len(records) == 1

    def test_mid_file_corruption_raises(self):
        lines = ['{"ts": 1.0}', "garbage", '{"ts": 2.0}']
        with pytest.raises(ValueError, match="corrupt journal line 2"):
            read_journal(lines)

    def test_blank_lines_skipped(self):
        records = read_journal(['{"ts": 1.0}', "", '{"ts": 2.0}'])
        assert len(records) == 2


class TestValidator:
    def good(self):
        return [
            {"ts": 1.0, "event": "submitted", "tenant": "a",
             "program": "p"},
            {"ts": 2.0, "event": "started", "tenant": "a",
             "program": "p", "attempt": 1},
            {"ts": 3.0, "event": "completed", "tenant": "a",
             "program": "p", "outcome": "ok"},
        ]

    def test_valid_stream(self):
        assert validate_journal(self.good()) == []

    def test_missing_fields(self):
        problems = validate_journal([{"event": "started"}])
        assert problems and "missing fields" in problems[0]

    def test_unknown_event(self):
        recs = self.good()
        recs[1]["event"] = "paused"
        assert any("unknown event" in p
                   for p in validate_journal(recs))

    def test_backwards_timestamp_within_stream(self):
        recs = self.good()
        recs[2]["ts"] = 0.5
        assert any("backwards" in p for p in validate_journal(recs))

    def test_interleaved_streams_independent(self):
        recs = [
            {"ts": 5.0, "event": "submitted", "tenant": "a",
             "program": "p"},
            {"ts": 1.0, "event": "submitted", "tenant": "b",
             "program": "q"},  # earlier ts, different stream: fine
            {"ts": 6.0, "event": "completed", "tenant": "a",
             "program": "p", "outcome": "ok"},
        ]
        assert validate_journal(recs) == []

    def test_terminal_without_outcome(self):
        recs = self.good()
        del recs[2]["outcome"]
        assert any("without outcome" in p
                   for p in validate_journal(recs))

    def test_terminal_without_submitted(self):
        recs = self.good()[1:]
        assert any("no submitted" in p for p in validate_journal(recs))


class TestCli:
    def write(self, tmp_path, records):
        path = tmp_path / "journal.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return str(path)

    def test_ok(self, tmp_path, capsys):
        path = self.write(tmp_path, TestValidator().good())
        assert events_main([path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK: 3 records")

    def test_min_records_enforced(self, tmp_path, capsys):
        path = self.write(tmp_path, TestValidator().good())
        assert events_main([path, "--min-records", "10"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_invalid_journal_fails(self, tmp_path, capsys):
        recs = TestValidator().good()
        del recs[2]["outcome"]
        path = self.write(tmp_path, recs)
        assert events_main([path]) == 1
        assert "FAIL" in capsys.readouterr().out
