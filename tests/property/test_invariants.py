"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytestmark = pytest.mark.slow  # full hypothesis sweep runs nightly

from repro.analysis.bounds import min_nttu
from repro.analysis.complexity import hmult_complexity
from repro.analysis.parameters import log_pq_of
from repro.analysis.security import security_level
from repro.ckks.params import CkksParams
from repro.core.config import BtsConfig
from repro.core.scheduler import Resource
from repro.core.scratchpad import CiphertextCache


# ---- parameter-space invariants ------------------------------------------------

@st.composite
def instances(draw):
    n = 1 << draw(st.integers(min_value=14, max_value=18))
    l = draw(st.integers(min_value=2, max_value=60))
    dnum = draw(st.integers(min_value=1, max_value=min(8, l + 1)))
    return CkksParams(n=n, l=l, dnum=dnum)


class TestParameterInvariants:
    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_k_covers_decomposition(self, params):
        """k special primes must cover the largest decomposition block."""
        assert params.k * params.dnum >= params.l + 1
        assert params.k >= 1

    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_evk_grows_with_level(self, params):
        sizes = [params.evk_bytes(lv) for lv in range(params.l + 1)]
        assert sizes == sorted(sizes)

    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_ct_smaller_than_evk(self, params):
        """An evk (dnum pairs over the wider base) dominates a ct."""
        assert params.evk_bytes(params.l) > params.ct_bytes(params.l)

    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_log_pq_consistent(self, params):
        assert params.log_pq == log_pq_of(
            params.l, params.dnum, params.scale_bits, params.q0_bits,
            params.p_bits)

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_security_positive_and_monotone(self, params):
        lam = security_level(params.n, params.log_pq)
        assert lam > 0
        assert security_level(params.n * 2, params.log_pq) > lam


class TestComplexityInvariants:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_shares_normalized(self, params):
        shares = hmult_complexity(params).shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in shares.values())

    @given(instances(), st.integers(min_value=0, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_level(self, params, lo):
        lo = min(lo, params.l - 1)
        assert hmult_complexity(params, lo).total <= \
            hmult_complexity(params, params.l).total

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_min_nttu_positive(self, params):
        assert min_nttu(params) > 0


# ---- scheduler invariants ---------------------------------------------------------

class TestResourceInvariants:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=10),    # duration
        st.floats(min_value=0, max_value=50)),   # earliest
        min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_no_overlap_and_fifo(self, jobs):
        r = Resource("x", log_events=True)
        for duration, earliest in jobs:
            r.reserve(duration + 1e-9, earliest=earliest)
        events = sorted(r.events, key=lambda e: e.start)
        for a, b in zip(events, events[1:]):
            assert b.start >= a.end - 1e-12

    @given(st.lists(st.floats(min_value=0.001, max_value=5),
                    min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_busy_time_is_sum(self, durations):
        r = Resource("x")
        for d in durations:
            r.reserve(d)
        assert r.busy_time == pytest.approx(sum(durations))


class TestCacheInvariants:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=20),
                              st.integers(min_value=1, max_value=40)),
                    min_size=1, max_size=200),
           st.integers(min_value=10, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded(self, accesses, capacity):
        cache = CiphertextCache(float(capacity))
        for ct_id, size in accesses:
            cache.access(ct_id, float(size), "x")
            assert cache.used_bytes <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_repeat_access_hits_when_fits(self, ids):
        """With capacity for everything, only compulsory misses occur."""
        cache = CiphertextCache(1e9)
        for ct_id in ids:
            cache.access(ct_id, 10.0, "x")
        assert cache.stats.misses == len(set(ids))


# ---- functional-plane invariants ----------------------------------------------------

class TestCiphertextInvariants:
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_add_then_sub_identity(self, seed, level):
        from tests.property._shared import shared_setup
        ring, kg, ev, enc = shared_setup()
        level = min(level, ring.max_level)
        rng = np.random.default_rng(seed)
        z = rng.normal(size=4)
        pt = enc.encode(z, 2.0 ** 40, level=level)
        ct = kg.encrypt_symmetric(pt.poly, pt.scale, 4)
        other = kg.encrypt_symmetric(pt.poly, pt.scale, 4)
        roundtrip = ev.sub(ev.add(ct, other), other)
        got = ev.decrypt_to_message(roundtrip, kg.secret)
        assert np.max(np.abs(got - z)) < 1e-6

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_mult_commutative(self, seed):
        from tests.property._shared import shared_setup
        ring, kg, ev, enc = shared_setup()
        rng = np.random.default_rng(seed)
        z0, z1 = rng.normal(size=(2, 4))
        ct0 = kg.encrypt_symmetric(enc.encode(z0, 2.0 ** 40).poly,
                                   2.0 ** 40, 4)
        ct1 = kg.encrypt_symmetric(enc.encode(z1, 2.0 ** 40).poly,
                                   2.0 ** 40, 4)
        ab = ev.decrypt_to_message(ev.multiply(ct0, ct1), kg.secret)
        ba = ev.decrypt_to_message(ev.multiply(ct1, ct0), kg.secret)
        assert np.max(np.abs(ab - ba)) < 1e-6


# ---- stacked-transform / base-conversion invariants -------------------------------


def _random_poly(ring, base, rng, is_ntt=False):
    from repro.ckks.rns import RnsPolynomial
    residues = np.stack([rng.integers(0, p.value, size=ring.n,
                                      dtype=np.uint64) for p in base])
    return RnsPolynomial(base, residues, is_ntt)


class TestStackedTransformInvariants:
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_stack_forward_split_equals_per_poly(self, seed, count):
        """stack -> forward -> split must be bit-identical per polynomial."""
        from repro.ckks.rns import StackedTransform
        from tests.property._shared import shared_setup
        ring, _, _, _ = shared_setup()
        rng = np.random.default_rng(seed)
        bases = [ring.base_q(2 + (i % (ring.max_level - 1)))
                 for i in range(count)]
        polys = [_random_poly(ring, b, rng) for b in bases]
        stacked = StackedTransform.forward(polys)
        for poly, got in zip(polys, stacked):
            solo = poly.to_ntt()
            assert got.base == solo.base
            assert got.is_ntt
            assert np.array_equal(got.residues, solo.residues)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=15, deadline=None)
    def test_stack_inverse_roundtrip(self, seed):
        from repro.ckks.rns import StackedTransform
        from tests.property._shared import shared_setup
        ring, _, _, _ = shared_setup()
        rng = np.random.default_rng(seed)
        polys = [_random_poly(ring, ring.base_qp(3), rng) for _ in range(3)]
        back = StackedTransform.inverse(StackedTransform.forward(polys))
        for poly, got in zip(polys, back):
            assert not got.is_ntt
            assert np.array_equal(got.residues, poly.residues)

    def test_mixed_domains_rejected(self):
        from repro.ckks.rns import StackedTransform
        from tests.property._shared import shared_setup
        ring, _, _, _ = shared_setup()
        rng = np.random.default_rng(0)
        a = _random_poly(ring, ring.base_q(2), rng, is_ntt=False)
        b = _random_poly(ring, ring.base_q(2), rng, is_ntt=True)
        with pytest.raises(ValueError):
            StackedTransform.forward([a, b])
        with pytest.raises(ValueError):
            StackedTransform.forward([])


class TestModUpModDownInvariants:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_mod_up_represents_x_plus_u_qblock(self, seed):
        """ModUp output is X + u * Q_block with the HPS-bounded |u|."""
        import math
        from repro.ckks.keyswitch import mod_up
        from repro.ckks.rns import RnsPolynomial, crt_reconstruct
        from tests.property._shared import shared_setup
        ring, _, _, _ = shared_setup()
        rng = np.random.default_rng(seed)
        level = int(rng.integers(1, ring.max_level + 1))
        slice_base, _, _, _ = ring.mod_up_plan(level)[0]
        coeffs = rng.integers(-(1 << 20), 1 << 20, size=ring.n)
        x = RnsPolynomial.from_signed_coeffs(coeffs, slice_base)
        raised = mod_up(x.to_ntt(), level, ring)
        assert raised.base == ring.base_qp(level)
        recon = crt_reconstruct(raised.from_ntt())
        q_block = math.prod(p.value for p in slice_base)
        for got, c in zip(recon, coeffs):
            residue = int(c) % q_block
            diff = int(got) - residue
            assert diff % q_block == 0
            assert abs(diff // q_block) <= len(slice_base)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_mod_down_inverts_multiply_by_p_at_every_level(self, seed):
        """mod_down(X * P) == X exactly, for every level."""
        from repro.ckks.keyswitch import mod_down
        from repro.ckks.rns import RnsPolynomial
        from tests.property._shared import shared_setup
        ring, _, _, _ = shared_setup()
        rng = np.random.default_rng(seed)
        coeffs = rng.integers(-(1 << 30), 1 << 30, size=ring.n)
        for level in range(ring.max_level + 1):
            x_qp = RnsPolynomial.from_signed_coeffs(
                coeffs, ring.base_qp(level))
            y = x_qp.mul_int(ring.p_product).to_ntt()
            got = mod_down(y, level, ring).from_ntt()
            want = RnsPolynomial.from_signed_coeffs(
                coeffs, ring.base_q(level))
            assert got.base == want.base
            assert np.array_equal(got.residues, want.residues)

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=10, deadline=None)
    def test_mod_down_pair_bit_identical_to_singles(self, seed):
        from repro.ckks.keyswitch import mod_down, mod_down_pair
        from tests.property._shared import shared_setup
        ring, _, _, _ = shared_setup()
        rng = np.random.default_rng(seed)
        for level in (0, 2, ring.max_level):
            base = ring.base_qp(level)
            pb = _random_poly(ring, base, rng, is_ntt=True)
            pa = _random_poly(ring, base, rng, is_ntt=True)
            got_b, got_a = mod_down_pair(pb, pa, level, ring)
            want_b = mod_down(pb, level, ring)
            want_a = mod_down(pa, level, ring)
            assert np.array_equal(got_b.residues, want_b.residues)
            assert np.array_equal(got_a.residues, want_a.residues)
