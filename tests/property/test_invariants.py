"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import min_nttu
from repro.analysis.complexity import hmult_complexity
from repro.analysis.parameters import log_pq_of
from repro.analysis.security import security_level
from repro.ckks.params import CkksParams
from repro.core.config import BtsConfig
from repro.core.scheduler import Resource
from repro.core.scratchpad import CiphertextCache


# ---- parameter-space invariants ------------------------------------------------

@st.composite
def instances(draw):
    n = 1 << draw(st.integers(min_value=14, max_value=18))
    l = draw(st.integers(min_value=2, max_value=60))
    dnum = draw(st.integers(min_value=1, max_value=min(8, l + 1)))
    return CkksParams(n=n, l=l, dnum=dnum)


class TestParameterInvariants:
    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_k_covers_decomposition(self, params):
        """k special primes must cover the largest decomposition block."""
        assert params.k * params.dnum >= params.l + 1
        assert params.k >= 1

    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_evk_grows_with_level(self, params):
        sizes = [params.evk_bytes(lv) for lv in range(params.l + 1)]
        assert sizes == sorted(sizes)

    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_ct_smaller_than_evk(self, params):
        """An evk (dnum pairs over the wider base) dominates a ct."""
        assert params.evk_bytes(params.l) > params.ct_bytes(params.l)

    @given(instances())
    @settings(max_examples=100, deadline=None)
    def test_log_pq_consistent(self, params):
        assert params.log_pq == log_pq_of(
            params.l, params.dnum, params.scale_bits, params.q0_bits,
            params.p_bits)

    @given(instances())
    @settings(max_examples=50, deadline=None)
    def test_security_positive_and_monotone(self, params):
        lam = security_level(params.n, params.log_pq)
        assert lam > 0
        assert security_level(params.n * 2, params.log_pq) > lam


class TestComplexityInvariants:
    @given(instances())
    @settings(max_examples=60, deadline=None)
    def test_shares_normalized(self, params):
        shares = hmult_complexity(params).shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in shares.values())

    @given(instances(), st.integers(min_value=0, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_level(self, params, lo):
        lo = min(lo, params.l - 1)
        assert hmult_complexity(params, lo).total <= \
            hmult_complexity(params, params.l).total

    @given(instances())
    @settings(max_examples=40, deadline=None)
    def test_min_nttu_positive(self, params):
        assert min_nttu(params) > 0


# ---- scheduler invariants ---------------------------------------------------------

class TestResourceInvariants:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=10),    # duration
        st.floats(min_value=0, max_value=50)),   # earliest
        min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_no_overlap_and_fifo(self, jobs):
        r = Resource("x", log_events=True)
        for duration, earliest in jobs:
            r.reserve(duration + 1e-9, earliest=earliest)
        events = sorted(r.events, key=lambda e: e.start)
        for a, b in zip(events, events[1:]):
            assert b.start >= a.end - 1e-12

    @given(st.lists(st.floats(min_value=0.001, max_value=5),
                    min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_busy_time_is_sum(self, durations):
        r = Resource("x")
        for d in durations:
            r.reserve(d)
        assert r.busy_time == pytest.approx(sum(durations))


class TestCacheInvariants:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=20),
                              st.integers(min_value=1, max_value=40)),
                    min_size=1, max_size=200),
           st.integers(min_value=10, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded(self, accesses, capacity):
        cache = CiphertextCache(float(capacity))
        for ct_id, size in accesses:
            cache.access(ct_id, float(size), "x")
            assert cache.used_bytes <= capacity

    @given(st.lists(st.integers(min_value=0, max_value=5),
                    min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_repeat_access_hits_when_fits(self, ids):
        """With capacity for everything, only compulsory misses occur."""
        cache = CiphertextCache(1e9)
        for ct_id in ids:
            cache.access(ct_id, 10.0, "x")
        assert cache.stats.misses == len(set(ids))


# ---- functional-plane invariants ----------------------------------------------------

class TestCiphertextInvariants:
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=30, deadline=None)
    def test_add_then_sub_identity(self, seed, level):
        from tests.property._shared import shared_setup
        ring, kg, ev, enc = shared_setup()
        level = min(level, ring.max_level)
        rng = np.random.default_rng(seed)
        z = rng.normal(size=4)
        pt = enc.encode(z, 2.0 ** 40, level=level)
        ct = kg.encrypt_symmetric(pt.poly, pt.scale, 4)
        other = kg.encrypt_symmetric(pt.poly, pt.scale, 4)
        roundtrip = ev.sub(ev.add(ct, other), other)
        got = ev.decrypt_to_message(roundtrip, kg.secret)
        assert np.max(np.abs(got - z)) < 1e-6

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_mult_commutative(self, seed):
        from tests.property._shared import shared_setup
        ring, kg, ev, enc = shared_setup()
        rng = np.random.default_rng(seed)
        z0, z1 = rng.normal(size=(2, 4))
        ct0 = kg.encrypt_symmetric(enc.encode(z0, 2.0 ** 40).poly,
                                   2.0 ** 40, 4)
        ct1 = kg.encrypt_symmetric(enc.encode(z1, 2.0 ** 40).poly,
                                   2.0 ** 40, 4)
        ab = ev.decrypt_to_message(ev.multiply(ct0, ct1), kg.secret)
        ba = ev.decrypt_to_message(ev.multiply(ct1, ct0), kg.secret)
        assert np.max(np.abs(ab - ba)) < 1e-6
