"""Shared lazily-built ring for property tests (hypothesis-safe cache)."""

from __future__ import annotations

_CACHE: list = []


def shared_setup():
    """(ring, keygen, evaluator, encoder) on a tiny N=64 ring."""
    if not _CACHE:
        from repro.ckks.encoder import Encoder
        from repro.ckks.evaluator import Evaluator
        from repro.ckks.keys import KeyGenerator
        from repro.ckks.params import CkksParams, RingContext

        params = CkksParams.functional(n=1 << 6, l=7, dnum=2,
                                       scale_bits=40, q0_bits=45,
                                       p_bits=45, h=8)
        ring = RingContext(params)
        kg = KeyGenerator(ring, seed=99)
        ev = Evaluator(ring, relin_key=kg.gen_relinearization_key())
        _CACHE.append((ring, kg, ev, Encoder(ring)))
    return _CACHE[0]
