"""Integration: the headline paper results the repository must reproduce.

Each test pins one claim of the BTS paper to this reconstruction, with
tolerances documented per case (see EXPERIMENTS.md for the full ledger).
"""

import pytest

from repro.analysis.bounds import min_bound_tmult_a_slot
from repro.baselines.cpu_lattigo import LattigoCpuModel
from repro.ckks.params import CkksParams
from repro.core.config import BtsConfig
from repro.core.power import AreaPowerModel
from repro.core.simulator import BtsSimulator
from repro.workloads.microbench import amortized_mult_workload


@pytest.fixture(scope="module")
def bts_tmult():
    """Measured T_mult,a/slot for all instances at 512MB."""
    out = {}
    for params in CkksParams.paper_instances():
        wl = amortized_mult_workload(params, repeats=3)
        rep = BtsSimulator(params).run(wl.trace)
        out[params.name] = wl.tmult_a_slot(rep.total_seconds)
    return out


class TestHeadlineSpeedups:
    def test_speedup_vs_cpu_is_thousands(self, bts_tmult):
        """Abstract: 2,237x multiplicative-throughput gain vs Lattigo."""
        cpu = LattigoCpuModel().tmult_a_slot()
        best = min(bts_tmult.values())
        speedup = cpu / best
        assert 1_000 < speedup < 4_000

    def test_best_instance_tmult_band(self, bts_tmult):
        """Section 6.3: best T_mult,a/slot is 45.5 ns (ours within 25%)."""
        best = min(bts_tmult.values())
        assert best == pytest.approx(45.5e-9, rel=0.25)

    def test_mult_throughput_tens_of_millions(self, bts_tmult):
        """Table 1: BTS achieves ~20M FHE mults/s per slot."""
        best = min(bts_tmult.values())
        assert 10e6 < 1.0 / best < 40e6


class TestFig7a:
    def test_512mb_above_min_bound(self, bts_tmult):
        for params in CkksParams.paper_instances():
            bound = min_bound_tmult_a_slot(params).tmult_a_slot
            assert bts_tmult[params.name] > bound

    def test_2gb_approaches_min_bound(self):
        """Fig. 7a: with 2GB, measured ~ the minimum bound."""
        for params in CkksParams.paper_instances():
            wl = amortized_mult_workload(params, repeats=3)
            sim = BtsSimulator(params,
                               BtsConfig.paper().with_scratchpad(2 << 30))
            got = wl.tmult_a_slot(sim.run(wl.trace).total_seconds)
            bound = min_bound_tmult_a_slot(params).tmult_a_slot
            assert got / bound < 1.6

    def test_ins3_worst_at_512mb(self, bts_tmult):
        """INS-3's larger temp data starves its ct cache (Section 6.3)."""
        assert bts_tmult["INS-3"] == max(bts_tmult.values())


class TestPhysicalDesign:
    def test_chip_area(self):
        """Abstract: 373.6 mm^2."""
        model = AreaPowerModel(BtsConfig.paper())
        assert model.chip_area_mm2() == pytest.approx(373.6, rel=0.005)

    def test_peak_power(self):
        """Abstract: up to 163.2 W."""
        model = AreaPowerModel(BtsConfig.paper())
        assert model.chip_peak_power_w() == pytest.approx(163.2, rel=0.005)


class TestFig9AblationShape:
    def test_each_feature_helps(self):
        """Fig. 9: instance change, scratchpad, overlap each add speedup."""
        from repro.core.config import MIB

        lattigo_like = CkksParams.lattigo_like()
        ins1 = CkksParams.ins1()

        def measured(params, config):
            wl = amortized_mult_workload(params, repeats=2)
            rep = BtsSimulator(params, config).run(wl.trace)
            return wl.tmult_a_slot(rep.total_seconds)

        small = BtsConfig.small(scratchpad_bytes=230 * MIB)
        t_small = measured(lattigo_like, small)
        t_ins1_small = measured(ins1, BtsConfig.small(380 * MIB))
        t_ins1_512 = measured(ins1, BtsConfig.paper()
                              .without_bconv_overlap())
        t_ins1_full = measured(ins1, BtsConfig.paper())
        t_ins1_2tb = measured(ins1, BtsConfig.paper()
                              .with_hbm_bandwidth(2e12))
        assert t_small > t_ins1_small > t_ins1_512 >= t_ins1_full \
            > t_ins1_2tb


class TestFig10Shape:
    def test_bootstrap_time_saturates_with_scratchpad(self):
        """Fig. 10: bigger scratchpad helps, then saturates."""
        from repro.core.config import MIB
        from repro.workloads.bootstrap_trace import BootstrapTraceBuilder
        from repro.workloads.trace import Trace

        params = CkksParams.ins1()
        times = []
        for mib in (256, 512, 1024):
            trace = Trace(name="boot")
            builder = BootstrapTraceBuilder(params)
            ct = trace.new_ct()
            for _ in range(2):
                ct = builder.emit(trace, ct)
            sim = BtsSimulator(params,
                               BtsConfig.paper().with_scratchpad(mib * MIB))
            times.append(sim.run(trace).total_seconds)
        assert times[0] >= times[1] >= times[2]
        gain_small = times[0] - times[1]
        gain_large = times[1] - times[2]
        assert gain_small >= gain_large
