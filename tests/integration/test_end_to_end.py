"""End-to-end integration across the functional and performance planes."""

import numpy as np
import pytest

from repro.ckks.bootstrap import Bootstrapper, BootstrapConfig
from repro.ckks.encoder import Encoder
from repro.ckks.evaluator import Evaluator
from repro.ckks.keys import KeyGenerator
from repro.ckks.params import CkksParams, RingContext
from repro.ckks.sine import SineConfig
from repro.core.config import BtsConfig
from repro.core.simulator import BtsSimulator
from repro.workloads.microbench import amortized_mult_workload


class TestFunctionalPipeline:
    """Realistic small applications on the real CKKS library."""

    @pytest.fixture(scope="class")
    def setup(self):
        params = CkksParams.functional(n=1 << 9, l=10, dnum=2,
                                       scale_bits=40, q0_bits=50,
                                       p_bits=50, h=32)
        ring = RingContext(params)
        kg = KeyGenerator(ring, seed=17)
        ev = Evaluator(
            ring,
            relin_key=kg.gen_relinearization_key(),
            rotation_keys={r: kg.gen_rotation_key(r)
                           for r in (1, 2, 4, 8, 16, 32, 64, 128)},
            conjugation_key=kg.gen_conjugation_key())
        return ring, kg, ev, Encoder(ring)

    def test_polynomial_evaluation(self, setup, rng):
        """Evaluate 0.5 x^3 - x + 0.25 elementwise under encryption."""
        ring, kg, ev, enc = setup
        x = rng.uniform(-1, 1, size=16)
        ct = kg.encrypt_symmetric(enc.encode(x + 0j, 2.0 ** 40).poly,
                                  2.0 ** 40, 16)
        sq = ev.multiply(ct, ct)
        cube = ev.multiply(sq, ct)
        term = ev.multiply_scalar(cube, 0.5, rescale=True)
        lin = ev.multiply_scalar(ct, -1.0, rescale=True)
        total = ev.add_scalar(ev.add(term, lin), 0.25)
        got = ev.decrypt_to_message(total, kg.secret)
        want = 0.5 * x ** 3 - x + 0.25
        assert np.max(np.abs(got - want)) < 1e-4

    def test_inner_product_via_rotations(self, setup, rng):
        """<x, y> computed with a rotate-and-add log reduction."""
        ring, kg, ev, enc = setup
        n = 16
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        ct_x = kg.encrypt_symmetric(enc.encode(x + 0j, 2.0 ** 40).poly,
                                    2.0 ** 40, n)
        prod = ev.multiply_plain(ct_x, enc.encode(y + 0j, 2.0 ** 40),
                                 rescale=True)
        acc = prod
        step = 1
        while step < n:
            acc = ev.add(acc, ev.rotate(acc, step))
            step *= 2
        got = ev.decrypt_to_message(acc, kg.secret)[0]
        assert abs(got - np.dot(x, y)) < 1e-3

    def test_logistic_gradient_step(self, setup, rng):
        """One HELR-style step: sigmoid(x.w) via degree-3 polynomial."""
        ring, kg, ev, enc = setup
        n = 16
        x = rng.normal(size=n) * 0.3
        ct = kg.encrypt_symmetric(enc.encode(x + 0j, 2.0 ** 40).poly,
                                  2.0 ** 40, n)
        # sigmoid(t) ~ 0.5 + 0.15t - 0.0015 t^3 (HELR's low-degree fit)
        cube = ev.multiply(ev.multiply(ct, ct), ct)
        t1 = ev.multiply_scalar(ct, 0.15, rescale=True)
        t3 = ev.multiply_scalar(cube, -0.0015, rescale=True)
        sig = ev.add_scalar(ev.add(t1, t3), 0.5)
        got = ev.decrypt_to_message(sig, kg.secret)
        want = 0.5 + 0.15 * x - 0.0015 * x ** 3
        assert np.max(np.abs(got - want)) < 1e-4


class TestComputeAfterBootstrap:
    @pytest.mark.slow
    def test_unbounded_depth(self):
        """The FHE promise: bootstrap, multiply, bootstrap again."""
        params = CkksParams.functional(n=1 << 9, l=14, dnum=3,
                                       scale_bits=40, q0_bits=52,
                                       p_bits=52, h=32)
        ring = RingContext(params)
        kg = KeyGenerator(ring, seed=23)
        ev = Evaluator(ring)
        bs = Bootstrapper(ev, BootstrapConfig(
            n_slots=4, sine=SineConfig(k_range=12, degree=63,
                                       double_angles=2)))
        bs.generate_keys(kg)
        enc = Encoder(ring)
        z = np.array([0.9, -0.85, 0.8, 0.95])
        ct = kg.encrypt_symmetric(enc.encode(z + 0j, 2.0 ** 40).poly,
                                  2.0 ** 40, 4)
        expected = z.copy()
        # square twice, exhaust the budget, refresh; repeat.  The point
        # is reaching level 0 twice and continuing - the LHE-impossible
        # part (Section 2.1) - while the values stay measurable.
        for _ in range(2):
            for _ in range(2):
                ct = ev.square(ct)
                expected = expected ** 2
            ct = ev.drop_to_level(ct, 0)
            ct = bs.bootstrap(ct)
        got = ev.decrypt_to_message(ct, kg.secret)
        # two refreshes at toy precision: a generous absolute bound
        assert np.max(np.abs(got - expected)) < 0.25
        assert np.max(np.abs(got)) > 0.05  # values did not collapse


class TestPlaneConsistency:
    """The symbolic and functional planes must agree on structure."""

    def test_trace_keyswitch_matches_functional_requirements(self):
        """Rotation amounts the functional bootstrapper needs exist in
        keys the trace builder also exercises conceptually."""
        from repro.ckks.bootstrap import Bootstrapper
        amounts = Bootstrapper.required_rotations(1 << 9, 4)
        assert all(isinstance(a, int) and 0 < a for a in amounts)

    def test_simulated_instances_match_params(self):
        for params in CkksParams.paper_instances():
            sim = BtsSimulator(params, BtsConfig.paper())
            assert sim.cost.params is params
            assert sim.cost.ntt.epoch_seconds == pytest.approx(
                544 / 1.2e9)

    def test_microbench_deterministic(self):
        params = CkksParams.ins1()
        wl1 = amortized_mult_workload(params)
        wl2 = amortized_mult_workload(params)
        sim = BtsSimulator(params)
        t1 = sim.run(wl1.trace).total_seconds
        t2 = BtsSimulator(params).run(wl2.trace).total_seconds
        assert t1 == pytest.approx(t2)
