"""Differential tests: planned execution vs naive eager evaluation.

The executor adds batching (hoisted rotations), reference-counted
freeing and metadata validation on top of plain Evaluator calls.  The
reference interpreter below strips all of that away: it walks the same
plan one node at a time with individual eager calls and keeps every
value alive.  The two must agree *bit for bit* — `rotate_hoisted` is
bit-identical to `rotate` by construction, and everything else is the
same arithmetic — so any divergence is an executor bug, not noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks.cipher import Ciphertext
from repro.runtime import (
    OpCode,
    PlannerConfig,
    PlanningError,
    Program,
    execute,
    plan_program,
)
from tests.conftest import encrypt_message

pytestmark = pytest.mark.slow

SCALE = 2.0 ** 40
#: amounts the session-scoped small_evaluator has keys for
KEYED_AMOUNTS = (1, 2, 3, 4, 8, 16)


def reference_execute(plan, evaluator, inputs):
    """Naive interpreter: one eager Evaluator call per node, no sharing."""
    values = {}
    for nid in plan.order:
        node = plan.nodes[nid]
        meta = plan.meta[nid]
        op = node.op
        args = [values[a] for a in node.args]
        if op is OpCode.INPUT:
            ct = inputs[node.name]
            if ct.level > meta.level:
                ct = evaluator.drop_to_level(ct, meta.level)
            values[nid] = ct
        elif op is OpCode.HMULT:
            values[nid] = evaluator.multiply(args[0], args[1],
                                             rescale=False)
        elif op is OpCode.PMULT:
            pt = evaluator.encoder.encode(
                np.asarray(node.payload, dtype=np.complex128),
                meta.enc_scale, level=args[0].level)
            values[nid] = evaluator.multiply_plain(args[0], pt)
        elif op is OpCode.CMULT:
            values[nid] = evaluator.multiply_scalar(args[0], node.payload,
                                                    scale=meta.enc_scale)
        elif op is OpCode.HADD:
            values[nid] = evaluator.add(args[0], args[1])
        elif op is OpCode.HSUB:
            values[nid] = evaluator.sub(args[0], args[1])
        elif op is OpCode.NEG:
            values[nid] = evaluator.negate(args[0])
        elif op is OpCode.HROT:
            values[nid] = evaluator.rotate(args[0], node.rotation)
        elif op is OpCode.CONJ:
            values[nid] = evaluator.conjugate(args[0])
        elif op is OpCode.RESCALE:
            values[nid] = evaluator.rescale(args[0])
        else:
            raise AssertionError(f"unexpected op {op}")
    return {name: values[nid] for name, nid in plan.outputs.items()}


def assert_ct_equal(got: Ciphertext, want: Ciphertext) -> None:
    assert got.level == want.level
    assert got.scale == want.scale
    assert np.array_equal(got.b.residues, want.b.residues)
    assert np.array_equal(got.a.residues, want.a.residues)


#: op menu for random DAGs: (tag, needs_second_operand)
_DAG_OPS = st.sampled_from(["add", "sub", "neg", "mul", "cmult", "pmult",
                            "rot", "conj"])


@st.composite
def dag_descriptors(draw):
    """A random op DAG over two inputs, as (op, operand-pick, attr) rows."""
    n_ops = draw(st.integers(min_value=1, max_value=10))
    rows = []
    for _ in range(n_ops):
        op = draw(_DAG_OPS)
        pick = draw(st.integers(min_value=0, max_value=10 ** 6))
        attr = draw(st.integers(min_value=0, max_value=len(KEYED_AMOUNTS)
                                - 1))
        rows.append((op, pick, attr))
    return rows


def build_dag(rows, n_slots):
    prog = Program(n_slots=n_slots, name="dag")
    pool = [prog.input("x"), prog.input("y")]
    for op, pick, attr in rows:
        a = pool[pick % len(pool)]
        b = pool[(pick // 7) % len(pool)]
        if op == "add":
            pool.append(a + b)
        elif op == "sub":
            pool.append(a - b)
        elif op == "neg":
            pool.append(-a)
        elif op == "mul":
            pool.append(a * b)
        elif op == "cmult":
            pool.append(a * (0.5 + 0.25 * attr))
        elif op == "pmult":
            vec = np.linspace(0.1, 1.0, n_slots) * (attr + 1)
            pool.append(a * vec)
        elif op == "rot":
            pool.append(a.rotate(KEYED_AMOUNTS[attr]))
        elif op == "conj":
            pool.append(a.conjugate())
    prog.output("out", pool[-1])
    return prog


class TestRandomDagDifferential:
    @given(rows=dag_descriptors())
    @settings(max_examples=25, deadline=None)
    def test_planned_execution_matches_naive(self, rows, small_ring,
                                             small_evaluator, small_keys,
                                             small_encoder):
        prog = build_dag(rows, small_ring.params.slots_max)
        try:
            plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        except PlanningError:
            return  # DAG too deep for the test ring: planner said so
        rng = np.random.default_rng(42)
        n = small_ring.params.slots_max
        inputs = {
            name: encrypt_message(
                small_keys, small_encoder,
                rng.normal(size=n) * 0.3 + 1j * rng.normal(size=n) * 0.3,
                SCALE)
            for name in prog.inputs
        }
        got = execute(plan, small_evaluator, inputs)
        want = reference_execute(plan, small_evaluator, inputs)
        assert set(got) == set(want)
        for name in got:
            assert_ct_equal(got[name], want[name])


@st.composite
def rotation_heavy_descriptors(draw):
    """DAGs guaranteed to form big rotation batches.

    Each descriptor yields one shared source expression, >= 4 distinct
    rotation amounts applied to it (the planner must detect one batch
    covering them all, exercised through the NTT-domain hoisted path),
    optionally a conjugation of the same source riding the batch, and a
    combining tail.
    """
    amounts = draw(st.lists(st.sampled_from(KEYED_AMOUNTS), min_size=4,
                            max_size=len(KEYED_AMOUNTS), unique=True))
    with_conj = draw(st.booleans())
    tail = draw(st.sampled_from(["sum", "pairwise", "weighted"]))
    prep = draw(st.sampled_from(["input", "scaled", "sum"]))
    return amounts, with_conj, tail, prep


def build_rotation_heavy(amounts, with_conj, tail, prep, n_slots):
    prog = Program(n_slots=n_slots, name="rotation-heavy")
    x = prog.input("x")
    y = prog.input("y")
    if prep == "scaled":
        src = x * 0.5
    elif prep == "sum":
        src = x + y
    else:
        src = x
    rotated = [src.rotate(a) for a in amounts]
    if with_conj:
        rotated.append(src.conjugate())
    if tail == "sum":
        acc = rotated[0]
        for term in rotated[1:]:
            acc = acc + term
    elif tail == "pairwise":
        acc = rotated[0] - rotated[-1]
        for term in rotated[1:-1]:
            acc = acc + term
    else:
        acc = rotated[0]
        for i, term in enumerate(rotated[1:]):
            acc = acc + term * (0.25 * (i + 1))
    prog.output("out", acc)
    return prog


class TestRotationHeavyDagDifferential:
    """Big rotation batches through the NTT-domain path vs eager calls."""

    @given(rows=rotation_heavy_descriptors())
    @settings(max_examples=15, deadline=None)
    def test_batched_execution_matches_naive(self, rows, small_ring,
                                             small_evaluator, small_keys,
                                             small_encoder):
        amounts, with_conj, tail, prep = rows
        prog = build_rotation_heavy(amounts, with_conj, tail, prep,
                                    small_ring.params.slots_max)
        plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        # The planner must fold every rotation (and the conjugation,
        # when present) of the shared source into one batch.
        batches = [b for b in plan.batches
                   if len(b.members) + len(b.conj_members) >= 4]
        assert batches, "expected a rotation batch of >= 4 members"
        batch = batches[0]
        assert len(batch.amounts(plan.nodes)) >= 4
        if with_conj:
            assert batch.conj_members

        rng = np.random.default_rng(7)
        n = small_ring.params.slots_max
        inputs = {
            name: encrypt_message(
                small_keys, small_encoder,
                rng.normal(size=n) * 0.3 + 1j * rng.normal(size=n) * 0.3,
                SCALE)
            for name in prog.inputs
        }
        got = execute(plan, small_evaluator, inputs)
        want = reference_execute(plan, small_evaluator, inputs)
        for name in got:
            assert_ct_equal(got[name], want[name])

    def test_conj_only_pair_batches(self, small_ring, small_evaluator,
                                    small_keys, small_encoder, rng):
        """Two CONJ nodes on one source share a single raise."""
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="conj-pair")
        x = prog.input("x")
        prog.output("out", x.conjugate() + (x.conjugate() * 0.5))
        plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        assert any(len(b.conj_members) >= 2 for b in plan.batches)
        z = rng.normal(size=n) * 0.3 + 1j * rng.normal(size=n) * 0.3
        inputs = {"x": encrypt_message(small_keys, small_encoder, z,
                                       SCALE)}
        got = execute(plan, small_evaluator, inputs)
        want = reference_execute(plan, small_evaluator, inputs)
        assert_ct_equal(got["out"], want["out"])


class TestBsgsStyleProgram:
    """A BSGS-shaped program: the rotation batch must hoist AND agree."""

    def test_hoisted_batch_matches_naive_and_plaintext(
            self, small_ring, small_evaluator, small_keys, small_encoder,
            rng):
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="bsgs")
        x = prog.input("x")
        acc = None
        for amount in (1, 2, 3, 4):
            vec = np.cos(np.arange(n) * (amount + 1))
            term = x.rotate(amount) * vec
            acc = term if acc is None else acc + term
        prog.output("y", (acc * acc))
        plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        assert len(plan.batches) == 1  # all four rotations share x

        z = rng.normal(size=n) * 0.3 + 0j
        inputs = {"x": encrypt_message(small_keys, small_encoder, z, SCALE)}
        got = execute(plan, small_evaluator, inputs)
        want = reference_execute(plan, small_evaluator, inputs)
        assert_ct_equal(got["y"], want["y"])

        acc_ref = np.zeros(n, dtype=np.complex128)
        for amount in (1, 2, 3, 4):
            acc_ref += np.roll(z, -amount) * np.cos(np.arange(n)
                                                    * (amount + 1))
        expect = acc_ref ** 2
        decoded = small_evaluator.decrypt_to_message(got["y"],
                                                     small_keys.secret)
        assert np.max(np.abs(decoded - expect)) < 1e-3


class TestHelrFunctionalPath:
    """The reduced-size HELR program executes and matches its mirror."""

    def test_one_iteration_matches_numpy_reference(
            self, small_ring, small_evaluator, small_keys, small_encoder,
            rng):
        from repro.workloads.helr import (
            HelrConfig,
            build_helr_program,
            helr_program_reference,
        )

        n = small_ring.params.slots_max
        config = HelrConfig(iterations=1, batch=16, features=6,
                            padded_features=8, sigmoid_depth=1,
                            sigmoid_mults=1)
        prog = build_helr_program(config, n)
        plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        small_keys.ensure_rotation_keys(small_evaluator,
                                        plan.required_rotations())

        vectors = {name: rng.normal(size=n) * 0.2 + 0j
                   for name in prog.inputs}
        inputs = {name: encrypt_message(small_keys, small_encoder, vec,
                                        SCALE)
                  for name, vec in vectors.items()}
        outputs = execute(plan, small_evaluator, inputs)
        reference = helr_program_reference(vectors, config, n)
        for name in ("weights", "momentum"):
            got = small_evaluator.decrypt_to_message(outputs[name],
                                                     small_keys.secret)
            assert np.max(np.abs(got - reference[name])) < 1e-3, name


class TestSemanticsAgainstNumpy:
    def test_mixed_program_decrypts_to_reference(
            self, small_ring, small_evaluator, small_keys, small_encoder,
            rng):
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="mixed")
        x = prog.input("x")
        y = prog.input("y")
        expr = (x * y + x.rotate(2)) * 0.5
        expr = expr * expr - y.conjugate()
        prog.output("out", expr)
        plan = plan_program(prog, PlannerConfig.from_ring(small_ring))

        zx = rng.normal(size=n) * 0.4 + 1j * rng.normal(size=n) * 0.4
        zy = rng.normal(size=n) * 0.4 + 1j * rng.normal(size=n) * 0.4
        inputs = {
            "x": encrypt_message(small_keys, small_encoder, zx, SCALE),
            "y": encrypt_message(small_keys, small_encoder, zy, SCALE),
        }
        got = small_evaluator.decrypt_to_message(
            execute(plan, small_evaluator, inputs)["out"],
            small_keys.secret)
        ref = (zx * zy + np.roll(zx, -2)) * 0.5
        ref = ref * ref - np.conj(zy)
        assert np.max(np.abs(got - ref)) < 1e-3
