"""Differential tests for the rotate-reduce fusion optimizer.

Two fidelity classes, mirroring the evaluator's own contract:

* ``fusion_moddown="stacked"`` keeps one logical ModDown per member
  (dispatched through one stacked call) and must be **bit-identical**
  to the unfused plan — any divergence is an optimizer/executor bug.
* ``fusion_moddown="single"`` accumulates the key-switch halves in the
  P-scaled extended base and pays one ModDown for the whole tree.  The
  deferred base conversion rounds once instead of per member, so — like
  the double-hoisted BSGS path — its output is compared after decrypt
  against a tight tolerance, and its kernel tallies must be *strictly
  lower* than the unfused plan's on every field.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.obs import kernel as K
from repro.runtime import (
    OpCode,
    PlannerConfig,
    Program,
    execute,
    execute_subgraph,
    plan_cache_key,
    plan_program,
    structural_hash,
)
from tests.conftest import encrypt_message

SCALE = 2.0 ** 40
#: amounts the session-scoped small_evaluator has keys for
KEYED_AMOUNTS = (1, 2, 3, 4, 8, 16)


def fused_config(ring, moddown="single"):
    return dataclasses.replace(PlannerConfig.from_ring(ring),
                               fuse_rotate_reduce=True,
                               fusion_moddown=moddown)


def assert_ct_equal(got, want):
    assert got.level == want.level
    assert got.scale == want.scale
    assert np.array_equal(got.b.residues, want.b.residues)
    assert np.array_equal(got.a.residues, want.a.residues)


def plain_tree(n_slots):
    """x + rot(x,1) + rot(x,2): unweighted, includes an identity term."""
    prog = Program(n_slots=n_slots, name="plain-tree")
    x = prog.input("x")
    prog.output("out", x + x.rotate(1) + x.rotate(2))
    return prog


def weighted_tree(n_slots):
    """Weights, signs and a conjugation — every leaf shape at once."""
    prog = Program(n_slots=n_slots, name="weighted-tree")
    x = prog.input("x")
    vec = np.linspace(0.1, 0.9, n_slots)
    expr = (x * 0.5 + x.rotate(1) * vec - x.rotate(2) * 0.25
            + x.conjugate() * 0.75)
    prog.output("out", expr)
    return prog


def encrypted_input(keys, encoder, rng, n, scale=SCALE):
    z = rng.normal(size=n) * 0.3 + 1j * rng.normal(size=n) * 0.3
    return encrypt_message(keys, encoder, z, scale)


class TestFusionDetection:
    def test_plain_tree_fuses(self, small_ring):
        prog = plain_tree(small_ring.params.slots_max)
        plan = plan_program(prog, fused_config(small_ring))
        assert len(plan.fusions) == 1
        fusion = plan.fusions[0]
        assert plan.nodes[fusion.source].op is OpCode.INPUT
        assert sorted(t.amount for t in fusion.terms) == [0, 1, 2]
        assert all(t.sign == 1 and t.weight is None for t in fusion.terms)
        # root maps to the fusion, covered nodes too, source does not
        assert plan.fusion_of[fusion.root] == 0
        assert all(plan.fusion_of[nid] == 0 for nid in fusion.covered)
        assert fusion.source not in fusion.covered
        # both rotations were absorbed: no hoisted batch remains
        assert plan.batches == []

    def test_weighted_signed_conj_tree_fuses(self, small_ring):
        prog = weighted_tree(small_ring.params.slots_max)
        plan = plan_program(prog, fused_config(small_ring))
        assert len(plan.fusions) == 1
        fusion = plan.fusions[0]
        amounts = sorted((t.amount for t in fusion.terms),
                         key=lambda a: (a is None, a))
        assert amounts == [0, 1, 2, None]
        signs = {t.amount: t.sign for t in fusion.terms}
        assert signs[2] == -1 and signs[1] == 1
        assert all(t.weight is not None for t in fusion.terms)

    def test_nested_tree_fuses_maximally(self, small_ring):
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="nested")
        x = prog.input("x")
        left = x.rotate(1) + x.rotate(2)
        right = x.rotate(3) + x.rotate(4)
        prog.output("out", left + right)
        plan = plan_program(prog, fused_config(small_ring))
        assert len(plan.fusions) == 1
        assert len(plan.fusions[0].terms) == 4

    def test_disabled_by_default(self, small_ring):
        prog = plain_tree(small_ring.params.slots_max)
        plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        assert plan.fusions == [] and plan.fusion_of == {}
        assert len(plan.batches) == 1

    def test_mixed_sources_rejected(self, small_ring):
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="mixed-src")
        x, y = prog.input("x"), prog.input("y")
        prog.output("out", x.rotate(1) + y.rotate(2))
        plan = plan_program(prog, fused_config(small_ring))
        assert plan.fusions == []
        # the ordinary hoisting pass still batches nothing across sources
        assert all(len(b.members) + len(b.conj_members) <= 1
                   for b in plan.batches)

    def test_single_galois_term_rejected(self, small_ring):
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="one-rot")
        x = prog.input("x")
        prog.output("out", x + x.rotate(1))
        plan = plan_program(prog, fused_config(small_ring))
        assert plan.fusions == []

    def test_multi_consumer_leaf_rejected(self, small_ring):
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="shared-rot")
        x = prog.input("x")
        r1 = x.rotate(1)
        prog.output("out", r1 + x.rotate(2))
        prog.output("aux", r1 * 2.0)
        plan = plan_program(prog, fused_config(small_ring))
        # r1 feeds two consumers, so it cannot be absorbed; as its own
        # identity leaf it breaks the common-source rule.
        assert plan.fusions == []

    def test_output_leaf_rejected(self, small_ring):
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="output-rot")
        x = prog.input("x")
        r1 = x.rotate(1)
        prog.output("r1", r1)
        prog.output("out", r1 + x.rotate(2))
        plan = plan_program(prog, fused_config(small_ring))
        assert plan.fusions == []

    def test_chained_fusions(self, small_ring, small_evaluator, small_keys,
                             small_encoder, rng):
        """A fused tree whose source is itself a fused root."""
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="chained")
        x = prog.input("x")
        t = x.rotate(1) + x.rotate(2)
        prog.output("out", t.rotate(3) + t.rotate(4))
        plan = plan_program(prog, fused_config(small_ring, "stacked"))
        assert len(plan.fusions) == 2
        roots = {f.root for f in plan.fusions}
        sources = {f.source for f in plan.fusions}
        assert roots & sources, "inner fused root should feed outer fusion"

        inputs = {"x": encrypted_input(small_keys, small_encoder, rng, n)}
        got = execute(plan, small_evaluator, inputs)
        ref_plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        want = execute(ref_plan, small_evaluator, inputs)
        assert_ct_equal(got["out"], want["out"])


class TestRotationCanonicalization:
    """Satellite: HROT amounts are canonicalized mod n_slots at emit."""

    def test_negative_amount_canonicalized_in_ir(self, small_ring):
        n = small_ring.params.slots_max
        neg = Program(n_slots=n, name="p")
        x = neg.input("x")
        neg.output("out", x.rotate(-1) + x.rotate(1))
        amounts = {node.rotation for node in neg.nodes
                   if node.op is OpCode.HROT}
        assert amounts == {1, n - 1}

    def test_negative_and_wrapped_amount_hash_identically(self, small_ring):
        n = small_ring.params.slots_max

        def build(amount):
            prog = Program(n_slots=n, name="p")
            x = prog.input("x")
            prog.output("out", x.rotate(amount) + x.rotate(1))
            return prog

        neg, wrapped = build(-1), build(n - 1)
        assert structural_hash(neg) == structural_hash(wrapped)
        config = PlannerConfig.from_ring(small_ring)
        assert (plan_cache_key(neg, config)
                == plan_cache_key(wrapped, config))

    def test_cache_key_varies_with_fusion_config(self, small_ring):
        prog = plain_tree(small_ring.params.slots_max)
        base = PlannerConfig.from_ring(small_ring)
        keys = {plan_cache_key(prog, base),
                plan_cache_key(prog, fused_config(small_ring, "single")),
                plan_cache_key(prog, fused_config(small_ring, "stacked"))}
        assert len(keys) == 3

    def test_bad_fusion_moddown_rejected(self, small_ring):
        with pytest.raises(ValueError, match="fusion_moddown"):
            fused_config(small_ring, "sideways")


class TestFusedExecution:
    def test_stacked_bit_identical_plain(self, small_ring, small_evaluator,
                                         small_keys, small_encoder, rng):
        n = small_ring.params.slots_max
        prog = plain_tree(n)
        inputs = {"x": encrypted_input(small_keys, small_encoder, rng, n)}
        want = execute(plan_program(prog, PlannerConfig.from_ring(
            small_ring)), small_evaluator, inputs)
        got = execute(plan_program(prog, fused_config(
            small_ring, "stacked")), small_evaluator, inputs)
        assert_ct_equal(got["out"], want["out"])

    def test_stacked_bit_identical_weighted(self, small_ring,
                                            small_evaluator, small_keys,
                                            small_encoder, rng):
        n = small_ring.params.slots_max
        prog = weighted_tree(n)
        inputs = {"x": encrypted_input(small_keys, small_encoder, rng, n)}
        want = execute(plan_program(prog, PlannerConfig.from_ring(
            small_ring)), small_evaluator, inputs)
        got = execute(plan_program(prog, fused_config(
            small_ring, "stacked")), small_evaluator, inputs)
        assert_ct_equal(got["out"], want["out"])

    def test_single_mode_close_and_strictly_cheaper(
            self, small_ring, small_evaluator, small_keys, small_encoder,
            rng):
        n = small_ring.params.slots_max
        prog = weighted_tree(n)
        inputs = {"x": encrypted_input(small_keys, small_encoder, rng, n)}
        plain_plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        fused_plan = plan_program(prog, fused_config(small_ring, "single"))
        obs.enable()
        try:
            K.reset()
            want = execute(plain_plan, small_evaluator, inputs)
            plain_tally = K.snapshot()
            K.reset()
            got = execute(fused_plan, small_evaluator, inputs)
            fused_tally = K.snapshot()
        finally:
            obs.disable()
        # functional agreement: one deferred rounding, ~1e-9 territory
        dec_want = small_evaluator.decrypt_to_message(want["out"],
                                                      small_keys.secret)
        dec_got = small_evaluator.decrypt_to_message(got["out"],
                                                     small_keys.secret)
        assert got["out"].scale == want["out"].scale
        assert got["out"].level == want["out"].level
        assert np.max(np.abs(dec_got - dec_want)) < 1e-6
        # the fused tree does strictly less kernel work across the board
        for field in K.FIELDS:
            assert fused_tally[field] < plain_tally[field], field

    def test_seeded_fused_subgraph_byte_identical(
            self, small_ring, small_evaluator, small_keys, small_encoder,
            rng):
        """execute_subgraph + seeded_nodes reproduce direct execution."""
        n = small_ring.params.slots_max
        prog = Program(n_slots=n, name="seeded")
        x = prog.input("x")
        tree = x + x.rotate(1) + x.rotate(2)
        prog.output("out", tree * tree)
        plan = plan_program(prog, fused_config(small_ring, "stacked"))
        assert len(plan.fusions) == 1
        root = plan.fusions[0].root

        inputs = {"x": encrypted_input(small_keys, small_encoder, rng, n)}
        direct = execute(plan, small_evaluator, inputs)
        shared = execute_subgraph(plan, small_evaluator, inputs, [root])
        assert set(shared) == {root}
        seeded = execute(plan, small_evaluator, inputs,
                         seeded_nodes=shared)
        assert_ct_equal(seeded["out"], direct["out"])


@st.composite
def tree_descriptors(draw):
    amounts = draw(st.lists(st.sampled_from(KEYED_AMOUNTS),
                            min_size=2, max_size=len(KEYED_AMOUNTS),
                            unique=True))
    with_identity = draw(st.booleans())
    with_conj = draw(st.booleans())
    weighted = draw(st.booleans())  # all-or-none keeps scales uniform
    n_terms = (len(amounts) + int(with_identity) + int(with_conj))
    signs = draw(st.lists(st.sampled_from([1, -1]), min_size=n_terms,
                          max_size=n_terms))
    kinds = draw(st.lists(st.sampled_from(["scalar", "vector"]),
                          min_size=n_terms, max_size=n_terms))
    return amounts, with_identity, with_conj, weighted, signs, kinds


@pytest.mark.slow
class TestRandomTreeDifferential:
    """Random rotate-reduce trees: fused-vs-unfused across both modes."""

    @staticmethod
    def build(amounts, with_identity, with_conj, weighted, signs, kinds,
              n_slots):
        prog = Program(n_slots=n_slots, name="random-tree")
        x = prog.input("x")
        members = [x.rotate(a) for a in amounts]
        if with_identity:
            members.append(x)
        if with_conj:
            members.append(x.conjugate())
        acc = None
        for i, member in enumerate(members):
            if weighted:
                if kinds[i] == "scalar":
                    member = member * (0.25 + 0.125 * i)
                else:
                    member = member * (np.linspace(0.05, 0.8, n_slots)
                                       * (i + 1))
            if acc is None:
                acc = member if signs[i] > 0 else -member
            elif signs[i] > 0:
                acc = acc + member
            else:
                acc = acc - member
        prog.output("out", acc)
        return prog

    @given(rows=tree_descriptors())
    @settings(max_examples=20, deadline=None)
    def test_fused_matches_unfused(self, rows, small_ring, small_evaluator,
                                   small_keys, small_encoder):
        n = small_ring.params.slots_max
        prog = self.build(*rows, n)
        plain_plan = plan_program(prog, PlannerConfig.from_ring(small_ring))
        stacked_plan = plan_program(prog, fused_config(small_ring,
                                                       "stacked"))
        single_plan = plan_program(prog, fused_config(small_ring,
                                                      "single"))
        assert stacked_plan.fusions and single_plan.fusions

        local = np.random.default_rng(99)
        inputs = {"x": encrypted_input(small_keys, small_encoder, local,
                                       n)}
        want = execute(plain_plan, small_evaluator, inputs)["out"]
        stacked = execute(stacked_plan, small_evaluator, inputs)["out"]
        assert_ct_equal(stacked, want)

        single = execute(single_plan, small_evaluator, inputs)["out"]
        assert single.scale == want.scale and single.level == want.level
        dec_want = small_evaluator.decrypt_to_message(want,
                                                      small_keys.secret)
        dec_single = small_evaluator.decrypt_to_message(single,
                                                        small_keys.secret)
        assert np.max(np.abs(dec_single - dec_want)) < 1e-6
