"""Unit tests for the runtime IR and planner passes."""

import numpy as np
import pytest

from repro.runtime import (
    OpCode,
    PlannerConfig,
    PlanningError,
    Program,
    plan_program,
)

NOMINAL = 2.0 ** 40


def make_config(max_level=6, bootstrap_level=None, input_level=None):
    return PlannerConfig(
        max_level=max_level, scale_bits=40,
        q_values=(2.0 ** 50,) + (NOMINAL,) * max_level,
        bootstrap_level=bootstrap_level, input_level=input_level)


class TestProgramBuilder:
    def test_creation_order_is_topological(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        y = (x + x.rotate(1)) * x
        prog.output("y", y)
        for node in prog.nodes:
            assert all(a < node.id for a in node.args)

    def test_rotate_zero_folds_to_identity(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        assert x.rotate(0) is x
        assert x.rotate(8) is x
        assert len(prog) == 1

    def test_rotation_amount_reduced_mod_slots(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        r = x.rotate(11)
        assert prog.node(r.node_id).rotation == 3

    def test_scalar_and_vector_multiply(self):
        prog = Program(n_slots=4)
        x = prog.input("x")
        s = x * 2.5
        v = x * np.ones(4)
        assert prog.node(s.node_id).op is OpCode.CMULT
        assert prog.node(v.node_id).op is OpCode.PMULT

    def test_reversed_ndarray_multiply_emits_one_pmult(self):
        """numpy must defer to Expr.__rmul__, not broadcast per slot."""
        prog = Program(n_slots=4)
        x = prog.input("x")
        v = np.ones(4) * x
        assert isinstance(v, type(x))
        assert prog.node(v.node_id).op is OpCode.PMULT
        assert len(prog) == 2  # input + one PMULT, no per-slot CMULTs

    def test_wrong_vector_length_rejected(self):
        prog = Program(n_slots=4)
        x = prog.input("x")
        with pytest.raises(ValueError):
            x * np.ones(8)

    def test_cross_program_mix_rejected(self):
        p1, p2 = Program(n_slots=4), Program(n_slots=4)
        with pytest.raises(ValueError):
            p1.input("x") + p2.input("y")

    def test_duplicate_names_rejected(self):
        prog = Program(n_slots=4)
        x = prog.input("x")
        with pytest.raises(ValueError):
            prog.input("x")
        prog.output("y", x)
        with pytest.raises(ValueError):
            prog.output("y", x)


class TestPlannerPasses:
    def test_dead_nodes_eliminated(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        live = x + x
        _dead = x * x  # never reaches an output
        _dead2 = _dead.rotate(1)
        prog.output("y", live)
        plan = plan_program(prog, make_config())
        assert plan.eliminated == 2
        assert all(plan.nodes[n].op is not OpCode.HMULT
                   for n in plan.order)

    def test_no_outputs_rejected(self):
        prog = Program(n_slots=8)
        prog.input("x")
        with pytest.raises(PlanningError):
            plan_program(prog, make_config())

    def test_lazy_rescale_shares_one_rescale_across_accumulation(self):
        """A PMult-accumulate tree pays one rescale, not one per term."""
        prog = Program(n_slots=8)
        x = prog.input("x")
        acc = x * np.ones(8)
        for _ in range(3):
            acc = acc + x * np.ones(8)
        out = acc * acc  # forces the accumulated value below the waterline
        prog.output("y", out)
        plan = plan_program(prog, make_config())
        # one rescale for the shared accumulator (both HMULT args are it)
        assert plan.inserted_rescales == 1
        assert plan.summary()["rescale"] == 1

    def test_rescale_reused_across_consumers(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        prod = x * x
        a = prod * x
        b = prod * x.rotate(1)
        prog.output("a", a)
        prog.output("b", b)
        plan = plan_program(prog, make_config())
        # prod is rescaled once, both consumers read the rescaled node
        assert plan.inserted_rescales == 1

    def test_mult_levels_decrease_with_rescales(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        y = ((x * x) * x) * x
        prog.output("y", y)
        plan = plan_program(prog, make_config())
        levels = [plan.meta[n].level for n in plan.order
                  if plan.nodes[n].op is OpCode.HMULT]
        assert levels == sorted(levels, reverse=True)
        assert plan.inserted_rescales == 2

    def test_rotation_batch_detected_for_shared_source(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        acc = x.rotate(1) + x.rotate(2) + x.rotate(3)
        prog.output("y", acc)
        plan = plan_program(prog, make_config())
        assert len(plan.batches) == 1
        batch = plan.batches[0]
        assert batch.amounts(plan.nodes) == [1, 2, 3]
        assert set(batch.members) == {
            n for n in plan.order if plan.nodes[n].op is OpCode.HROT}

    def test_chained_rotations_do_not_batch(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        acc = x
        for step in (1, 2, 4):
            acc = acc + acc.rotate(step)
        prog.output("y", acc)
        plan = plan_program(prog, make_config())
        assert plan.batches == []

    def test_exhausted_levels_without_bootstrap_rejected(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        y = x
        for _ in range(8):  # deeper than max_level=6
            y = y * y
        prog.output("y", y)
        with pytest.raises(PlanningError):
            plan_program(prog, make_config())

    def test_bootstrap_inserted_when_levels_run_out(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        y = x
        for _ in range(8):
            y = y * y
        prog.output("y", y)
        plan = plan_program(prog, make_config(bootstrap_level=4))
        assert plan.inserted_bootstraps >= 1
        assert plan.min_level() >= 0
        boot_meta = [plan.meta[n] for n in plan.order
                     if plan.nodes[n].op is OpCode.BOOTSTRAP]
        assert all(m.level == 4 for m in boot_meta)

    def test_manual_bootstrap_requires_configured_level(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        prog.output("y", x.bootstrap())
        with pytest.raises(PlanningError):
            plan_program(prog, make_config())
        plan = plan_program(prog, make_config(bootstrap_level=3))
        assert plan.summary()["bootstrap"] == 1

    def test_required_rotations_union(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        y = x.rotate(1) + x.rotate(3) + (x * x).rotate(3)
        prog.output("y", y)
        plan = plan_program(prog, make_config())
        assert plan.required_rotations() == {1, 3}

    def test_input_level_override(self):
        prog = Program(n_slots=8)
        x = prog.input("x")
        prog.output("y", x * x)
        plan = plan_program(prog, make_config(input_level=3))
        in_id = prog.inputs["x"]
        assert plan.meta[in_id].level == 3

    def test_planned_scales_use_actual_prime_values(self):
        q_values = (2.0 ** 50, NOMINAL * 1.01, NOMINAL * 0.99)
        cfg = PlannerConfig(max_level=2, scale_bits=40, q_values=q_values)
        prog = Program(n_slots=8)
        x = prog.input("x")
        y = (x * x) * x
        prog.output("y", y)
        plan = plan_program(prog, cfg)
        rescale = next(n for n in plan.order
                       if plan.nodes[n].op is OpCode.RESCALE)
        # rescale at level 2 divides by exactly q_values[2]
        assert plan.meta[rescale].scale == \
            pytest.approx(NOMINAL ** 2 / q_values[2], rel=1e-12)


class TestPlannerConfig:
    def test_q_values_length_checked(self):
        with pytest.raises(ValueError):
            PlannerConfig(max_level=3, scale_bits=40,
                          q_values=(NOMINAL,) * 3)

    def test_bootstrap_level_range_checked(self):
        with pytest.raises(ValueError):
            PlannerConfig(max_level=3, scale_bits=40,
                          q_values=(NOMINAL,) * 4, bootstrap_level=5)

    def test_from_ring_matches_prime_chain(self, small_ring):
        cfg = PlannerConfig.from_ring(small_ring)
        assert cfg.max_level == small_ring.max_level
        assert cfg.q_values == tuple(float(p.value)
                                     for p in small_ring.q_primes)
