"""Lowering tests: IR -> HEOp trace contract, plus the HELR twin paths."""

import numpy as np
import pytest

from repro.ckks.params import CkksParams
from repro.core.simulator import BtsSimulator
from repro.runtime import (
    PlannerConfig,
    PlanningError,
    Program,
    plan_program,
    lower_to_trace,
)
from repro.workloads.bootstrap_trace import BootstrapPhases
from repro.workloads.helr import (
    HelrConfig,
    build_helr_program,
    build_helr_trace,
)
from repro.workloads.trace import OpKind

#: shallow bootstrap pipeline that fits the small test parameter sets
SMALL_PHASES = BootstrapPhases(cts_levels=1, stc_levels=1, sine_degree=3,
                               double_angles=0, margin_levels=0)


def _app_counts(trace):
    out = {}
    for op in trace.ops:
        if op.phase.startswith("app."):
            out[op.kind.value] = out.get(op.kind.value, 0) + 1
    return out


def _app_rotations(trace):
    return sorted(op.rotation for op in trace.ops
                  if op.phase.startswith("app.")
                  and op.kind is OpKind.HROT)


class TestLoweringContract:
    def make_plan(self):
        prog = Program(n_slots=8, name="contract")
        x = prog.input("x")
        y = prog.input("y")
        expr = (x * y + x.rotate(2) - y.conjugate()) * 0.5
        expr = -(expr * expr)
        prog.output("out", expr)
        return plan_program(prog, PlannerConfig(
            max_level=6, scale_bits=40,
            q_values=(2.0 ** 50,) + (2.0 ** 40,) * 6))

    def test_op_mapping(self):
        plan = self.make_plan()
        trace = lower_to_trace(plan).trace
        counts = trace.summary()
        # HSUB lowers to HAdd, NEG lowers to CMult (cost-shape mapping)
        assert counts["HMult"] == 2
        assert counts["HRot"] == 1
        assert counts["HConj"] == 1
        assert counts["HAdd"] == plan.summary()["hadd"] \
            + plan.summary()["hsub"]
        assert counts["CMult"] == plan.summary()["cmult"] \
            + plan.summary()["neg"]
        assert counts["HRescale"] == plan.summary()["rescale"]
        assert "ModRaise" not in counts

    def test_rescale_emitted_at_input_level(self):
        plan = self.make_plan()
        trace = lower_to_trace(plan).trace
        for op in trace.ops:
            if op.kind is OpKind.HRESCALE:
                # HRescale executes at the level it divides away
                assert op.level >= 1

    def test_levels_never_negative_and_dataflow_closed(self):
        plan = self.make_plan()
        lowered = lower_to_trace(plan)
        defined = set(lowered.ct_ids.values())
        for op in lowered.trace.ops:
            assert op.level >= 0
            defined.add(op.output)
            for ct in op.inputs:
                assert ct in defined
        assert len(lowered.ct_ids) == len(plan.order)

    def test_simulator_executes_lowered_trace(self):
        plan = self.make_plan()
        trace = lower_to_trace(plan).trace
        report = BtsSimulator(CkksParams.ins2()).run(trace)
        assert report.total_seconds > 0
        assert sum(report.op_counts.values()) == len(trace.ops)

    def test_bootstrap_requires_params(self):
        prog = Program(n_slots=8, name="boot")
        x = prog.input("x")
        prog.output("out", x.bootstrap())
        plan = plan_program(prog, PlannerConfig(
            max_level=14, scale_bits=40,
            q_values=(2.0 ** 50,) + (2.0 ** 40,) * 14,
            bootstrap_level=8))
        with pytest.raises(PlanningError):
            lower_to_trace(plan)

    def test_bootstrap_expansion_level_mismatch_rejected(self):
        prog = Program(n_slots=8, name="boot")
        x = prog.input("x")
        prog.output("out", x.bootstrap())
        plan = plan_program(prog, PlannerConfig(
            max_level=14, scale_bits=40,
            q_values=(2.0 ** 50,) + (2.0 ** 40,) * 14,
            bootstrap_level=5))  # SMALL_PHASES lands at 14 - 6 = 8
        params = CkksParams.functional(n=1 << 8, l=14, dnum=2)
        with pytest.raises(PlanningError):
            lower_to_trace(plan, params=params, phases=SMALL_PHASES)

    def test_bootstrap_expands_to_analytic_pipeline(self):
        prog = Program(n_slots=8, name="boot")
        x = prog.input("x")
        prog.output("out", x.bootstrap())
        params = CkksParams.functional(n=1 << 8, l=14, dnum=2)
        plan = plan_program(prog, PlannerConfig(
            max_level=14, scale_bits=40,
            q_values=(2.0 ** 50,) + (2.0 ** 40,) * 14,
            bootstrap_level=14 - SMALL_PHASES.total_levels))
        trace = lower_to_trace(plan, params=params,
                               phases=SMALL_PHASES).trace
        assert trace.count(OpKind.MODRAISE) == 1
        assert trace.count(OpKind.HCONJ) >= 1  # EvalMod's conjugate
        phases = {op.phase for op in trace.ops}
        assert any(p.startswith("boot.") for p in phases)


class TestHelrRuntimeTwin:
    """build_helr_program lowers to the same app schedule as the
    hand-built analytic trace (sigmoid compared at sigmoid_mults=1)."""

    CONFIG = HelrConfig(iterations=2, batch=16, features=6,
                        padded_features=8, sigmoid_depth=1,
                        sigmoid_mults=1)

    def test_app_phase_op_counts_match_analytic(self):
        params = CkksParams.functional(n=1 << 8, l=14, dnum=2)
        prog = build_helr_program(self.CONFIG, params.slots_max)
        plan = plan_program(prog, PlannerConfig.from_params(params))
        runtime_trace = lower_to_trace(plan).trace
        analytic = build_helr_trace(params, self.CONFIG,
                                    phases=SMALL_PHASES).trace
        assert _app_counts(runtime_trace) == _app_counts(analytic)
        assert _app_rotations(runtime_trace) == _app_rotations(analytic)

    def test_lazy_rescale_no_worse_than_analytic(self):
        params = CkksParams.functional(n=1 << 8, l=14, dnum=2)
        prog = build_helr_program(self.CONFIG, params.slots_max)
        plan = plan_program(prog, PlannerConfig.from_params(params))
        analytic = build_helr_trace(params, self.CONFIG,
                                    phases=SMALL_PHASES).trace
        runtime_rescales = plan.summary()["rescale"]
        analytic_rescales = _app_counts(analytic)["HRescale"]
        assert runtime_rescales <= analytic_rescales

    def test_automatic_bootstraps_no_more_frequent_than_analytic(self):
        """Lazy placement refreshes at most as often as the analytic
        headroom rule (which preemptively bootstraps both state cts
        whenever an iteration might not fit)."""
        config = HelrConfig(iterations=6, batch=16, features=6,
                            padded_features=8, sigmoid_depth=1,
                            sigmoid_mults=1)
        params = CkksParams.functional(n=1 << 8, l=14, dnum=2)
        start = params.l - SMALL_PHASES.total_levels
        prog = build_helr_program(config, params.slots_max)
        plan = plan_program(prog, PlannerConfig.from_params(
            params, boot_levels=SMALL_PHASES.total_levels,
            input_level=start))
        analytic = build_helr_trace(params, config, phases=SMALL_PHASES)
        assert 0 < plan.inserted_bootstraps <= analytic.bootstrap_count
        assert plan.min_level() >= 0
        # the lowered trace expands each bootstrap into the analytic
        # pipeline, so ModRaise counts the refreshes
        lowered = lower_to_trace(plan, params=params, phases=SMALL_PHASES)
        assert lowered.trace.count(OpKind.MODRAISE) == \
            plan.inserted_bootstraps

    def test_simulated_timing_report(self):
        params = CkksParams.functional(n=1 << 8, l=14, dnum=2)
        prog = build_helr_program(self.CONFIG, params.slots_max)
        plan = plan_program(prog, PlannerConfig.from_params(params))
        trace = lower_to_trace(plan).trace
        report = BtsSimulator(CkksParams.ins2()).run(trace)
        assert report.total_seconds > 0
        assert report.op_counts["HRot"] == _app_counts(trace)["HRot"]
