"""Tests for the L/dnum/evk interplay (Fig. 1 / Table 4 machinery)."""

import pytest

from repro.analysis.parameters import (
    dnum_sweep,
    instance_for,
    log_pq_of,
    max_dnum,
    max_level_for,
    table4_rows,
)


class TestMaxDnum:
    """The Fig. 1 table must reproduce exactly."""

    @pytest.mark.parametrize("n,want", [
        (1 << 15, 14), (1 << 16, 29), (1 << 17, 60), (1 << 18, 121)])
    def test_fig1_table(self, n, want):
        assert max_dnum(n) == want


class TestMaxLevel:
    def test_ins1_point(self):
        """dnum = 1 at N = 2^17 yields L = 27 (INS-1)."""
        assert max_level_for(1 << 17, 1) == 27

    def test_level_increases_with_dnum(self):
        levels = [max_level_for(1 << 17, d) for d in (1, 2, 4, 8, 16)]
        assert levels == sorted(levels)
        assert levels[-1] > levels[0]

    def test_level_gain_saturates(self):
        """Section 3.2: the L gain from dnum saturates quickly."""
        l1 = max_level_for(1 << 17, 1)
        l4 = max_level_for(1 << 17, 4)
        l16 = max_level_for(1 << 17, 16)
        assert (l4 - l1) > (l16 - l4)

    def test_infeasible_ring(self):
        with pytest.raises(ValueError):
            max_level_for(1 << 10, 1)

    def test_log_pq_of_matches_instance(self):
        level = max_level_for(1 << 17, 2)
        params = instance_for(1 << 17, 2)
        assert params.log_pq == log_pq_of(level, 2)


class TestDnumSweep:
    def test_monotone_evk_growth(self):
        points = dnum_sweep(1 << 16)
        evks = [p.evk_bytes for p in points]
        assert evks == sorted(evks)

    def test_normalized_dnum_range(self):
        points = dnum_sweep(1 << 16)
        assert points[0].normalized_dnum == pytest.approx(
            1 / max_dnum(1 << 16))
        assert points[-1].normalized_dnum <= 1.0

    def test_all_meet_security(self):
        for p in dnum_sweep(1 << 16):
            assert p.security >= 125.0  # small tolerance at the edge

    def test_level_never_exceeds_bootstrap_floor(self):
        """Fig. 1a's dotted line: L >= 11 needed for any bootstrapping."""
        points = dnum_sweep(1 << 17)
        assert all(p.max_level >= 11 for p in points)

    def test_ins1_evk_on_curve(self):
        points = {p.dnum: p for p in dnum_sweep(1 << 17)}
        assert points[1].evk_bytes / (1 << 20) == pytest.approx(112.0,
                                                                rel=0.01)


class TestTable4:
    def test_rows_complete(self):
        rows = table4_rows()
        assert [r["instance"] for r in rows] == ["INS-1", "INS-2", "INS-3"]

    def test_log_pq_column(self):
        rows = table4_rows()
        assert [r["log_pq"] for r in rows] == [3090, 3210, 3160]

    def test_lambda_column(self):
        rows = table4_rows()
        paper = [133.4, 128.7, 130.8]
        for row, want in zip(rows, paper):
            assert row["lambda"] == pytest.approx(want, abs=0.3)
