"""Tests for the minimum-bound model (Fig. 2) and Eq. 10."""

import pytest

from repro.analysis.bounds import (
    evk_load_seconds,
    min_bound_tmult_a_slot,
    min_nttu,
)
from repro.ckks.params import CkksParams


class TestEvkLoad:
    def test_ins1_full_level(self):
        """112 MiB / 1 TB/s ~ 117.4 us."""
        t = evk_load_seconds(CkksParams.ins1(), 27)
        assert t == pytest.approx(117.44e-6, rel=1e-3)

    def test_scales_with_bandwidth(self):
        p = CkksParams.ins1()
        assert evk_load_seconds(p, 27, 2e12) == pytest.approx(
            evk_load_seconds(p, 27, 1e12) / 2)


class TestMinBound:
    def test_paper_band(self):
        """Min bounds within ~25% of the paper's 27.7/19.9/22.1 ns."""
        paper = {"INS-1": 27.7e-9, "INS-2": 19.9e-9, "INS-3": 22.1e-9}
        for params in CkksParams.paper_instances():
            got = min_bound_tmult_a_slot(params).tmult_a_slot
            want = paper[params.name]
            assert abs(got - want) / want < 0.25

    def test_ins2_is_best(self):
        """The paper's key Fig. 2 takeaway: (39, 2) wins at N = 2^17."""
        results = {p.name: min_bound_tmult_a_slot(p).tmult_a_slot
                   for p in CkksParams.paper_instances()}
        assert results["INS-2"] == min(results.values())

    def test_bandwidth_halves_bound(self):
        p = CkksParams.ins2()
        slow = min_bound_tmult_a_slot(p, bandwidth=1e12).tmult_a_slot
        fast = min_bound_tmult_a_slot(p, bandwidth=2e12).tmult_a_slot
        assert fast == pytest.approx(slow / 2, rel=1e-6)

    def test_boot_dominates(self):
        """Bootstrapping is the bulk of the Eq. 8 numerator."""
        r = min_bound_tmult_a_slot(CkksParams.ins1())
        assert r.boot_seconds > 5 * r.mult_chain_seconds

    def test_smaller_n_worse_per_slot(self):
        """Section 3.4: T_mult,a/slot improves with N (given security)."""
        from repro.analysis.parameters import instance_for
        small = instance_for(1 << 16, 1)
        large = instance_for(1 << 17, 1)
        assert min_bound_tmult_a_slot(small).tmult_a_slot > \
            min_bound_tmult_a_slot(large).tmult_a_slot


class TestMinNttu:
    def test_paper_value(self):
        """Eq. 10 evaluates to 1,328 for INS-1."""
        assert min_nttu(CkksParams.ins1()) == pytest.approx(1328, abs=2)

    def test_dnum1_maximizes(self):
        """Section 4.2: minNTTU is largest at dnum = 1."""
        from repro.analysis.parameters import instance_for
        values = [min_nttu(instance_for(1 << 17, d)) for d in (1, 2, 4)]
        assert values[0] == max(values)

    def test_bts_provisioning_sufficient(self):
        """BTS's 2,048 NTTUs exceed every instance's requirement."""
        for params in CkksParams.paper_instances():
            assert min_nttu(params) <= 2048
