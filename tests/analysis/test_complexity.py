"""Tests for the HMult complexity model (Fig. 3b shape)."""

import pytest

from repro.analysis.complexity import (
    complexity_breakdown,
    hmult_complexity,
)
from repro.ckks.params import CkksParams


class TestHMultComplexity:
    def test_shares_sum_to_one(self):
        shares = hmult_complexity(CkksParams.ins1()).shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_ntt_limb_count_matches_eq10(self):
        """(i)NTT limbs together equal (dnum+2)(k+l+1) (Eq. 10)."""
        for params in CkksParams.paper_instances():
            c = hmult_complexity(params)
            butterfly = (params.n // 2) * 17
            limbs = (c.ntt_mults + c.intt_mults) / butterfly
            assert limbs == pytest.approx(
                (params.dnum + 2) * (params.k + params.l + 1))

    def test_lower_level_cheaper(self):
        params = CkksParams.ins1()
        assert hmult_complexity(params, 5).total < \
            hmult_complexity(params, 27).total

    def test_bconv_count_dnum1(self):
        """Section 4.3: BConv MACs = 3 * (l+1) * k * N at dnum = 1."""
        params = CkksParams.ins1()
        c = hmult_complexity(params)
        macs_only = 3 * 28 * 28 * params.n
        first_part = (28 + 2 * 28) * params.n
        assert c.bconv_mults == macs_only + first_part


class TestBreakdown:
    def test_bconv_share_rises_as_dnum_falls(self):
        """The paper's motivation for the BConvU (Section 4.2)."""
        rows = complexity_breakdown(dnum_values=(1, 3, 6, 14))
        shares = [row["BConv"] for row in rows]
        assert shares == sorted(shares, reverse=True)

    def test_ntt_dominates_at_max_dnum(self):
        rows = complexity_breakdown()
        max_row = rows[-1]
        assert max_row["dnum"] == "max"
        assert max_row["NTT"] > max_row["BConv"]

    def test_bconv_small_at_max_dnum(self):
        """Paper: ~12% at dnum = max; our raw-mult counting gives ~9%."""
        rows = complexity_breakdown()
        assert rows[-1]["BConv"] < 15.0

    def test_rows_carry_levels(self):
        rows = complexity_breakdown(dnum_values=(1, 2))
        assert rows[0]["L"] == 27
        assert rows[1]["L"] > rows[0]["L"]
