"""Tests for the security-level fit and budgets (Section 3 anchors)."""

import pytest

from repro.analysis.security import (
    log_pq_budget,
    max_log_pq,
    meets_target,
    security_level,
)
from repro.ckks.params import CkksParams


class TestLambdaFit:
    """The fit must reproduce Table 4's published lambdas closely."""

    @pytest.mark.parametrize("log_pq,want", [
        (3090, 133.4), (3210, 128.7), (3160, 130.8)])
    def test_table4_anchors(self, log_pq, want):
        got = security_level(1 << 17, log_pq)
        assert got == pytest.approx(want, abs=0.25)

    def test_monotone_decreasing_in_log_pq(self):
        assert security_level(1 << 17, 3000) > security_level(1 << 17, 3500)

    def test_monotone_increasing_in_n(self):
        assert security_level(1 << 18, 3000) > security_level(1 << 17, 3000)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            security_level(1 << 17, 0)


class TestMaxLogPq:
    def test_inverse_of_fit(self):
        bound = max_log_pq(1 << 17, 128.0)
        assert security_level(1 << 17, bound) == pytest.approx(128.0)

    def test_rejects_low_target(self):
        with pytest.raises(ValueError):
            max_log_pq(1 << 17, 5.0)


class TestBudget:
    @pytest.mark.parametrize("n,budget", [
        (1 << 15, 775), (1 << 16, 1550), (1 << 17, 3100), (1 << 18, 6150)])
    def test_anchored_budgets(self, n, budget):
        assert log_pq_budget(n) == budget

    def test_non_anchor_falls_back(self):
        assert log_pq_budget(1 << 14) > 0

    def test_other_target_scales(self):
        strict = log_pq_budget(1 << 17, 150.0)
        loose = log_pq_budget(1 << 17, 110.0)
        assert strict < log_pq_budget(1 << 17) < loose


class TestMeetsTarget:
    def test_paper_instances_are_128b(self):
        for params in CkksParams.paper_instances():
            assert meets_target(params.n, params.log_pq, 128.0)

    def test_oversized_modulus_fails(self):
        assert not meets_target(1 << 17, 4000, 128.0)
