"""Tests for the rPLP-vs-CLP parallelization study (Section 4.3)."""

import pytest

from repro.analysis.parallelism import (
    ParallelismComparison,
    clp_utilization,
    compare_over_trace,
    exchange_words_per_keyswitch,
    ntt_split_exchange_rounds,
    rplp_utilization,
)
from repro.ckks.params import CkksParams
from repro.workloads.microbench import amortized_mult_workload
from repro.workloads.trace import Trace


class TestRplpUtilization:
    def test_perfect_when_divisible(self):
        assert rplp_utilization(level=63, n_pe=64) == 1.0

    def test_collapses_at_low_level(self):
        """The paper's load-imbalance argument: few limbs, idle PEs."""
        assert rplp_utilization(level=3, n_pe=64) == pytest.approx(4 / 64)

    def test_sawtooth_above_pe_count(self):
        # 65 live limbs on 64 PEs: two rounds, half idle
        assert rplp_utilization(level=64, n_pe=64) == pytest.approx(
            65 / 128)

    def test_clp_level_independent(self):
        n = 1 << 17
        assert clp_utilization(n, 2048) == 1.0
        assert clp_utilization(n, 2048) == clp_utilization(n, 2048)

    def test_clp_remainder(self):
        assert clp_utilization(100, 64) == pytest.approx(100 / 128)


class TestExchangeVolume:
    def test_matches_working_base(self):
        params = CkksParams.ins1()
        assert exchange_words_per_keyswitch(params) == 56 * params.n

    def test_level_dependence(self):
        params = CkksParams.ins2()
        assert exchange_words_per_keyswitch(params, 5) < \
            exchange_words_per_keyswitch(params, 30)


class TestTraceComparison:
    def test_clp_beats_rplp_on_real_workload(self):
        """Bootstrapping sweeps levels high->low: rPLP pays for it."""
        params = CkksParams.ins1()
        wl = amortized_mult_workload(params)
        cmp = compare_over_trace(params, wl.trace, n_pe=28)
        assert isinstance(cmp, ParallelismComparison)
        assert cmp.clp > cmp.rplp_mean
        assert cmp.clp_advantage > 1.2
        assert cmp.rplp_worst < 0.3  # low-level ops starve most PEs

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            compare_over_trace(CkksParams.ins1(), Trace(name="empty"))


class TestNttSplit:
    def test_3d_needs_two_rounds(self):
        """Section 4.3: BTS's 3D-NTT uses exactly two exchange rounds."""
        assert ntt_split_exchange_rounds(3) == 2

    def test_finer_split_costs_more(self):
        assert ntt_split_exchange_rounds(4) > ntt_split_exchange_rounds(3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ntt_split_exchange_rounds(0)
