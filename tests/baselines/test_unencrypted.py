"""Tests for the unencrypted-execution model (Section 6.3 slowdowns)."""

import pytest

from repro.baselines.unencrypted import UnencryptedModel
from repro.ckks.params import CkksParams
from repro.core.simulator import BtsSimulator
from repro.workloads.helr import build_helr_trace


class TestPlaintextEstimates:
    def test_helr_iteration_microseconds(self):
        """1024 x 196 logistic regression: ~hundreds of microseconds."""
        t = UnencryptedModel().helr_iteration_seconds()
        assert 10e-6 < t < 1e-3

    def test_resnet_milliseconds(self):
        t = UnencryptedModel().resnet20_seconds()
        assert 1e-3 < t < 20e-3

    def test_sorting_scales_superlinear(self):
        model = UnencryptedModel()
        small = model.sorting_seconds(1 << 10)
        large = model.sorting_seconds(1 << 14)
        assert large > 16 * small  # n log^2 n growth

    def test_throughput_scaling(self):
        fast = UnencryptedModel(flops_per_second=1e11)
        slow = UnencryptedModel(flops_per_second=1e10)
        assert fast.resnet20_seconds() == pytest.approx(
            slow.resnet20_seconds() / 10)


class TestSlowdownShape:
    def test_helr_slowdown_band(self):
        """Paper: HELR on BTS is ~141x slower than unencrypted."""
        params = CkksParams.ins2()
        wl = build_helr_trace(params)
        rep = BtsSimulator(params).run(wl.trace)
        fhe_iter = rep.total_seconds / wl.config.iterations
        plain = UnencryptedModel().helr_iteration_seconds()
        slowdown = fhe_iter / plain
        assert 50 < slowdown < 500

    def test_fhe_never_faster_than_plain(self):
        params = CkksParams.ins1()
        wl = build_helr_trace(params)
        rep = BtsSimulator(params).run(wl.trace)
        assert rep.total_seconds / wl.config.iterations > \
            UnencryptedModel().helr_iteration_seconds()
