"""Tests for the reconstructed CPU / GPU / F1 baseline models."""

import pytest

from repro.baselines.cpu_lattigo import (
    LattigoCpuModel,
    REPORTED_HELR_MS_PER_ITER,
    REPORTED_TMULT_A_SLOT,
)
from repro.baselines.f1 import F1Model, F1_PLUS_SPEEDUP
from repro.baselines.gpu_100x import Gpu100xModel
from repro.ckks.params import CkksParams
from repro.workloads.trace import OpKind, Trace


class TestLattigoCpu:
    def test_calibrated_tmult(self):
        """Must reproduce the paper's ~101.8 us (2,237x vs BTS)."""
        got = LattigoCpuModel().tmult_a_slot()
        assert got == pytest.approx(REPORTED_TMULT_A_SLOT, rel=0.05)

    def test_table1_throughput_band(self):
        """Table 1: Lattigo FHE mult throughput is 6-10 K/s."""
        throughput = 1.0 / LattigoCpuModel().tmult_a_slot()
        assert 6_000 <= throughput <= 12_000

    def test_keyswitch_dominates(self):
        model = LattigoCpuModel()
        params = model.params
        ks = model.keyswitch_seconds(params.l)
        trace = Trace(name="x")
        a = trace.new_ct()
        trace.hadd(a, trace.new_ct(), params.l)
        add = model.op_seconds(trace.ops[0])
        assert ks > 50 * add

    def test_deeper_level_costs_more(self):
        model = LattigoCpuModel()
        assert model.keyswitch_seconds(5) < model.keyswitch_seconds(20)

    def test_helr_order_of_magnitude(self):
        """Paper Table 5: 37,050 ms per HELR iteration on the CPU."""
        from repro.workloads.helr import build_helr_trace
        model = LattigoCpuModel()
        wl = build_helr_trace(model.params)
        got = wl.ms_per_iteration(model.run(wl.trace))
        assert got == pytest.approx(REPORTED_HELR_MS_PER_ITER, rel=0.5)

    def test_run_sums_ops(self):
        model = LattigoCpuModel()
        trace = Trace(name="x")
        a, b = trace.new_ct(), trace.new_ct()
        trace.hmult(a, b, 10)
        trace.hmult(a, b, 10)
        single = Trace(name="y")
        c, d = single.new_ct(), single.new_ct()
        single.hmult(c, d, 10)
        assert model.run(trace) == pytest.approx(2 * model.run(single))


class TestGpu100x:
    def test_published_anchors(self):
        gpu = Gpu100xModel()
        assert gpu.tmult_a_slot(97) == pytest.approx(743e-9)
        assert gpu.tmult_a_slot(173) == pytest.approx(8e-6)

    def test_interpolation_monotone(self):
        gpu = Gpu100xModel()
        assert gpu.tmult_a_slot(97) < gpu.tmult_a_slot(128) \
            < gpu.tmult_a_slot(173)

    def test_clamped_outside_range(self):
        gpu = Gpu100xModel()
        assert gpu.tmult_a_slot(50) == pytest.approx(743e-9)
        assert gpu.tmult_a_slot(250) == pytest.approx(8e-6)

    def test_helr(self):
        assert Gpu100xModel().helr_ms_per_iteration() == 775.0


class TestF1:
    def test_f1_slower_than_cpu(self):
        """Section 6.3: F1 is 2.5x slower than Lattigo per slot."""
        f1 = F1Model()
        cpu = LattigoCpuModel()
        assert f1.tmult_a_slot() == pytest.approx(
            2.5 * cpu.tmult_a_slot(), rel=1e-6)

    def test_table1_throughput(self):
        """Table 1: F1's FHE mult throughput ~4 K/s."""
        throughput = F1Model().mult_throughput_per_slot()
        assert 2_500 <= throughput <= 5_500

    def test_f1_plus_scaling(self):
        f1 = F1Model()
        f1p = F1Model(scaled=True)
        assert f1p.tmult_a_slot() == pytest.approx(
            f1.tmult_a_slot() / F1_PLUS_SPEEDUP)
        assert f1p.name == "F1+"

    def test_helr_anchors(self):
        assert F1Model().helr_ms_per_iteration() == 1024.0
        assert F1Model(scaled=True).helr_ms_per_iteration() == 148.0


class TestCrossSystemOrdering:
    def test_fig6_ordering(self):
        """Fig. 6: BTS << 100x << F1+ < Lattigo < F1 (per-slot)."""
        from repro.core.simulator import BtsSimulator
        from repro.workloads.microbench import amortized_mult_workload

        params = CkksParams.ins2()
        wl = amortized_mult_workload(params, repeats=2)
        rep = BtsSimulator(params).run(wl.trace)
        bts = wl.tmult_a_slot(rep.total_seconds)
        gpu = Gpu100xModel().tmult_a_slot(128)
        cpu = LattigoCpuModel().tmult_a_slot()
        f1 = F1Model().tmult_a_slot()
        f1p = F1Model(scaled=True).tmult_a_slot()
        assert bts < gpu < f1p < cpu < f1
