"""Tests for the trace IR and all workload generators."""

import pytest

from repro.ckks.params import CkksParams
from repro.workloads.bootstrap_trace import BootstrapPhases, \
    BootstrapTraceBuilder
from repro.workloads.helr import HelrConfig, build_helr_trace
from repro.workloads.microbench import amortized_mult_workload
from repro.workloads.resnet import build_resnet_trace
from repro.workloads.sorting import build_sorting_trace
from repro.workloads.trace import HEOp, OpKind, Trace


class TestTraceIR:
    def test_ct_ids_unique(self):
        trace = Trace(name="t")
        ids = [trace.new_ct() for _ in range(100)]
        assert len(set(ids)) == 100

    def test_pt_ids_disjoint_from_ct(self):
        trace = Trace(name="t")
        cts = {trace.new_ct() for _ in range(10)}
        pts = {trace.new_pt() for _ in range(10)}
        assert not cts & pts

    def test_builders_record_ops(self):
        trace = Trace(name="t")
        a, b = trace.new_ct(), trace.new_ct()
        c = trace.hmult(a, b, 5)
        d = trace.hrot(c, 3, 5)
        trace.hadd(c, d, 5)
        assert trace.count(OpKind.HMULT) == 1
        assert trace.count(OpKind.HROT) == 1
        assert trace.keyswitch_count() == 2

    def test_hrot_zero_rejected(self):
        with pytest.raises(ValueError):
            HEOp(OpKind.HROT, 3, (0,), 1, rotation=0)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            HEOp(OpKind.HADD, -1, (0, 1), 2)

    def test_distinct_rotations(self):
        trace = Trace(name="t")
        a = trace.new_ct()
        for r in (1, 2, 2, 7):
            a = trace.hrot(a, r, 4)
        assert trace.distinct_rotations() == {1, 2, 7}

    def test_needs_evk_flags(self):
        assert OpKind.HMULT.needs_evk
        assert OpKind.HROT.needs_evk
        assert OpKind.HCONJ.needs_evk
        assert not OpKind.HADD.needs_evk
        assert not OpKind.PMULT.needs_evk


class TestBootstrapTrace:
    def test_lboot_is_19(self):
        """The paper's bootstrapping consumes 19 levels."""
        assert BootstrapPhases().total_levels == 19

    def test_level_accounting(self):
        params = CkksParams.ins1()
        builder = BootstrapTraceBuilder(params)
        trace = Trace(name="b")
        builder.emit(trace, trace.new_ct())
        assert builder.output_level == params.l - 19

    def test_op_mix_anchors(self):
        """Paper Section 3.3: >40 distinct rotation evks, 100s of ops,
        HMult+HRot the dominant kinds."""
        params = CkksParams.ins1()
        builder = BootstrapTraceBuilder(params)
        trace = Trace(name="b")
        builder.emit(trace, trace.new_ct())
        assert len(trace.distinct_rotations()) > 40
        assert len(trace.ops) > 200
        assert trace.keyswitch_count() > 80

    def test_op_levels_descend_through_phases(self):
        params = CkksParams.ins2()
        builder = BootstrapTraceBuilder(params)
        trace = Trace(name="b")
        builder.emit(trace, trace.new_ct())
        cts_levels = [op.level for op in trace.ops
                      if op.phase.startswith("boot.cts")]
        stc_levels = [op.level for op in trace.ops
                      if op.phase.startswith("boot.stc")]
        assert min(cts_levels) > max(stc_levels)

    def test_diagonals_stable_across_invocations(self):
        params = CkksParams.ins1()
        builder = BootstrapTraceBuilder(params)
        trace = Trace(name="b")
        builder.emit(trace, trace.new_ct())
        first = {op.plain_operand for op in trace.ops
                 if op.kind is OpKind.PMULT}
        start = len(trace.ops)
        builder.emit(trace, trace.new_ct())
        second = {op.plain_operand for op in trace.ops[start:]
                  if op.kind is OpKind.PMULT}
        assert first == second

    def test_sparse_packing_is_cheaper(self):
        params = CkksParams.ins1()
        full = Trace(name="f")
        BootstrapTraceBuilder(params).emit(full, full.new_ct())
        sparse = Trace(name="s")
        BootstrapTraceBuilder(params, n_slots=256).emit(
            sparse, sparse.new_ct())
        assert sparse.keyswitch_count() < full.keyswitch_count()
        assert len(sparse.ops) < len(full.ops)

    def test_sparse_emits_subsum(self):
        params = CkksParams.ins1()
        trace = Trace(name="s")
        BootstrapTraceBuilder(params, n_slots=256).emit(
            trace, trace.new_ct())
        assert any(op.phase == "boot.subsum" for op in trace.ops)

    def test_rejects_shallow_instance(self):
        with pytest.raises(ValueError):
            BootstrapTraceBuilder(CkksParams(n=1 << 17, l=10, dnum=1))


class TestMicrobench:
    def test_structure(self):
        wl = amortized_mult_workload(CkksParams.ins1())
        assert wl.usable_levels == 8
        assert wl.trace.bootstrap_count() == 1
        assert wl.trace.count(OpKind.HMULT) >= 8 + 36  # chain + sine

    def test_eq8_scaling(self):
        wl = amortized_mult_workload(CkksParams.ins1())
        assert wl.tmult_a_slot(1.0) == pytest.approx(
            1.0 / 8 * 2 / (1 << 17))

    def test_repeats(self):
        wl = amortized_mult_workload(CkksParams.ins1(), repeats=3)
        assert wl.trace.bootstrap_count() == 3
        assert wl.usable_levels == 24


class TestHelr:
    def test_iteration_count(self):
        wl = build_helr_trace(CkksParams.ins2())
        assert wl.config.iterations == 30

    def test_bootstrap_frequency_tracks_levels(self):
        """Fewer usable levels -> more bootstraps (INS-1 vs INS-2)."""
        b1 = build_helr_trace(CkksParams.ins1()).bootstrap_count
        b2 = build_helr_trace(CkksParams.ins2()).bootstrap_count
        b3 = build_helr_trace(CkksParams.ins3()).bootstrap_count
        assert b1 > b2 > b3

    def test_bootstraps_come_in_pairs(self):
        """Weights and momentum refresh together."""
        wl = build_helr_trace(CkksParams.ins1())
        assert wl.bootstrap_count % 2 == 0

    def test_rejects_shallow(self):
        # L=24 leaves only 5 usable levels; the iteration needs 6.
        with pytest.raises(ValueError):
            build_helr_trace(CkksParams(n=1 << 17, l=24, dnum=1))


class TestResnet:
    def test_bootstrap_counts_near_paper(self):
        """Table 6: 53 / 22 / 19 bootstraps for INS-1/2/3."""
        paper = {"INS-1": 53, "INS-2": 22, "INS-3": 19}
        for params in CkksParams.paper_instances():
            got = build_resnet_trace(params).bootstrap_count
            want = paper[params.name]
            assert abs(got - want) / want < 0.35

    def test_ordering(self):
        counts = [build_resnet_trace(p).bootstrap_count
                  for p in CkksParams.paper_instances()]
        assert counts[0] > counts[1] > counts[2]

    def test_has_conv_and_relu_phases(self):
        wl = build_resnet_trace(CkksParams.ins2())
        phases = {op.phase for op in wl.trace.ops}
        assert any(p.startswith("app.stage") for p in phases)
        assert "app.relu" in phases
        assert "app.fc" in phases


class TestSorting:
    def test_stage_count(self):
        """log(n)(log(n)+1)/2 = 105 compare-exchange stages at 2^14."""
        wl = build_sorting_trace(CkksParams.ins1())
        assert wl.stages == 105

    def test_bootstrap_counts_near_paper(self):
        """Table 6: 521 / 306 / 229 bootstraps for INS-1/2/3."""
        paper = {"INS-1": 521, "INS-2": 306, "INS-3": 229}
        for params in CkksParams.paper_instances():
            got = build_sorting_trace(params).bootstrap_count
            want = paper[params.name]
            assert abs(got - want) / want < 0.35

    def test_ordering(self):
        counts = [build_sorting_trace(p).bootstrap_count
                  for p in CkksParams.paper_instances()]
        assert counts[0] > counts[1] > counts[2]

    def test_rejects_shallow(self):
        with pytest.raises(ValueError):
            build_sorting_trace(CkksParams(n=1 << 17, l=25, dnum=1))
