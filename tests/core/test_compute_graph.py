"""Tests for the op-to-pipeline cost model (Fig. 3a structure)."""

import pytest

from repro.ckks.params import CkksParams
from repro.core.compute_graph import OpCostModel, OpScheduler
from repro.core.config import BtsConfig
from repro.core.scheduler import Machine
from repro.workloads.trace import HEOp, OpKind


@pytest.fixture(scope="module")
def cost_ins2():
    return OpCostModel(CkksParams.ins2(), BtsConfig.paper())


class TestSliceGeometry:
    def test_full_level_slice_count(self, cost_ins2):
        """beta == dnum at the maximum level."""
        slices = cost_ins2.slices(39)
        assert len(slices) == 2
        assert all(src == 20 for src, _ in slices)

    def test_partial_level(self, cost_ins2):
        """At level 19 (20 limbs), one alpha=20 slice suffices."""
        slices = cost_ins2.slices(19)
        assert len(slices) == 1
        assert slices[0][0] == 20

    def test_ragged_tail_slice(self, cost_ins2):
        """Level 24 -> 25 limbs: a 20-limb slice plus a 5-limb tail."""
        slices = cost_ins2.slices(24)
        assert [src for src, _ in slices] == [20, 5]

    def test_dst_is_working_complement(self, cost_ins2):
        for level in (5, 24, 39):
            working = cost_ins2.params.k + level + 1
            for src, dst in cost_ins2.slices(level):
                assert src + dst == working

    def test_sources_cover_level(self, cost_ins2):
        for level in (0, 7, 39):
            assert sum(s for s, _ in cost_ins2.slices(level)) == level + 1


class TestByteAccounting:
    def test_ct_bytes_delegates(self, cost_ins2):
        assert cost_ins2.ct_bytes(10) == \
            cost_ins2.params.ct_bytes(10)

    def test_plain_bytes_compact(self, cost_ins2):
        """Compact plaintext storage: one word per coefficient."""
        assert cost_ins2.plain_bytes(5) == cost_ins2.plain_bytes(39)
        assert cost_ins2.plain_bytes(5) == cost_ins2.params.n * 8

    def test_limb_bytes(self, cost_ins2):
        assert cost_ins2.limb_bytes() == (1 << 17) * 8


class TestScheduledShapes:
    def _run(self, params, kind, level, overlap=True):
        config = BtsConfig.paper() if overlap \
            else BtsConfig.paper().without_bconv_overlap()
        cost = OpCostModel(params, config)
        machine = Machine.create()
        scheduler = OpScheduler(cost, machine)
        if kind is OpKind.HMULT:
            op = HEOp(OpKind.HMULT, level, (0, 1), 2)
            return scheduler.schedule_keyswitch(op, 0.0, 0.0), machine
        if kind is OpKind.HROT:
            op = HEOp(OpKind.HROT, level, (0,), 2, rotation=1)
            return scheduler.schedule_keyswitch(op, 0.0, 0.0), machine
        if kind is OpKind.PMULT:
            op = HEOp(OpKind.PMULT, level, (0,), 2, plain_operand=9)
            return scheduler.schedule_pmult(op, 0.0), machine
        raise AssertionError(kind)

    def test_hmult_evk_bytes(self):
        params = CkksParams.ins1()
        execution, _ = self._run(params, OpKind.HMULT, 27)
        assert execution.evk_bytes == params.evk_bytes(27)

    def test_overlap_shortens_op(self):
        """Fig. 9's BConv/iNTT overlap must help (or at least not hurt)."""
        params = CkksParams.ins1()
        config_on = BtsConfig.paper().with_hbm_bandwidth(20e12)
        config_off = config_on.without_bconv_overlap()
        t_on = self._with_config(params, config_on)
        t_off = self._with_config(params, config_off)
        assert t_on < t_off

    @staticmethod
    def _with_config(params, config):
        cost = OpCostModel(params, config)
        machine = Machine.create()
        scheduler = OpScheduler(cost, machine)
        op = HEOp(OpKind.HMULT, params.l, (0, 1), 2)
        return scheduler.schedule_keyswitch(op, 0.0, 0.0).duration

    def test_hrot_uses_noc(self):
        params = CkksParams.ins1()
        _, machine = self._run(params, OpKind.HROT, 27)
        assert machine.automorphism.busy_time > 0

    def test_hmult_does_not_use_noc_directly(self):
        params = CkksParams.ins1()
        _, machine = self._run(params, OpKind.HMULT, 27)
        assert machine.automorphism.busy_time == 0

    def test_pmult_expands_on_nttu(self):
        params = CkksParams.ins1()
        execution, machine = self._run(params, OpKind.PMULT, 27)
        # 28 limb-epochs of plaintext expansion
        epochs = machine.ntt.busy_time / (544 / 1.2e9)
        assert epochs == pytest.approx(28, abs=0.01)

    def test_temp_scales_with_level(self, cost_ins2):
        assert cost_ins2.keyswitch_temp_bytes(10) < \
            cost_ins2.keyswitch_temp_bytes(39)


def _small_fixed_trace():
    """A tiny hand-written trace with real data dependencies."""
    from repro.workloads.trace import Trace

    trace = Trace(name="fixed-small")
    a = trace.new_ct()
    b = trace.new_ct()
    prod = trace.hmult(a, b, 20, phase="app")
    prod = trace.hrescale(prod, 20, phase="app")
    rot = trace.hrot(prod, 1, 19, phase="app")
    acc = trace.hadd(prod, rot, 19, phase="app")
    trace.pmult(acc, 19, phase="app")
    return trace


class TestKeyswitchStageOrder:
    """The Fig. 3a pipeline stages must honour their data dependencies."""

    def _events(self, level=27):
        params = CkksParams.ins1()
        cost = OpCostModel(params, BtsConfig.paper())
        machine = Machine.create(log_events=True)
        scheduler = OpScheduler(cost, machine)
        op = HEOp(OpKind.HMULT, level, (0, 1), 2)
        execution = scheduler.schedule_keyswitch(op, 0.0, 0.0)
        by_label = {}
        for resource in machine.all_resources():
            for event in resource.events:
                by_label[event.label] = event
        return execution, by_label

    def test_slice_pipeline_order(self):
        """Per slice: iNTT -> BConv2 -> NTT -> evk product, in time."""
        execution, events = self._events()
        for idx in range(2):  # INS-1 at full level has beta >= 1 slices
            label = f"iNTT.d2[{idx}]"
            if label not in events:
                continue
            intt = events[label]
            bconv = events[f"BConv2.d2[{idx}]"]
            ntt = events[f"NTT.d2[{idx}]"]
            mult = events[f"x evk[{idx}]"]
            # BConv may overlap the producing iNTT (Fig. 9), but never
            # start before it does; the rest is strictly ordered.
            assert bconv.start >= intt.start
            assert ntt.start >= bconv.end
            assert mult.start >= ntt.end

    def test_moddown_follows_evk_products(self):
        execution, events = self._events()
        mult_ends = [e.end for label, e in events.items()
                     if label.startswith("x evk[")]
        assert events["iNTT.bx"].start >= max(mult_ends)
        # Both SSA stages run on the shared MMAU: serialized, each after
        # its own half's NTT, and the later one closes the op.
        ssa_bx, ssa_ax = events["SSA.bx"], events["SSA.ax"]
        assert ssa_bx.start >= events["NTT.bx"].end
        assert ssa_ax.start >= events["NTT.ax"].end
        assert ssa_ax.start >= ssa_bx.end or ssa_bx.start >= ssa_ax.end
        assert execution.end == max(ssa_bx.end, ssa_ax.end)

    def test_schedule_is_deterministic(self):
        """Two fresh machines produce identical stage timelines."""
        e1, ev1 = self._events()
        e2, ev2 = self._events()
        assert (e1.start, e1.end, e1.evk_bytes) == \
            (e2.start, e2.end, e2.evk_bytes)
        assert set(ev1) == set(ev2)
        for label in ev1:
            assert ev1[label] == ev2[label]


class TestSimulatorDeterminism:
    """Cycle counts on a fixed trace are a pure function of the inputs."""

    def test_fixed_trace_reports_identical(self):
        from repro.core.simulator import BtsSimulator

        params = CkksParams.ins2()
        trace = _small_fixed_trace()
        r1 = BtsSimulator(params).run(trace)
        r2 = BtsSimulator(params).run(trace)
        assert r1.total_seconds == r2.total_seconds
        assert r1.op_seconds == r2.op_seconds
        assert r1.op_counts == r2.op_counts
        assert r1.hbm_bytes == r2.hbm_bytes

    def test_dependency_chain_never_reorders(self):
        """Each op starts no earlier than the op producing its input."""
        from repro.core.simulator import BtsSimulator

        params = CkksParams.ins2()
        trace = _small_fixed_trace()
        report = BtsSimulator(params).run(trace, log_events=True)
        producer_end: dict[int, float] = {}
        for execution in report.executions:
            op = execution.op
            for ct_id in op.inputs:
                if ct_id in producer_end:
                    assert execution.end >= producer_end[ct_id]
            producer_end[op.output] = execution.end

    def test_longer_trace_costs_more(self):
        from repro.core.simulator import BtsSimulator

        params = CkksParams.ins2()
        short = _small_fixed_trace()
        longer = _small_fixed_trace()
        extra = longer.hrot(0, 2, 19, phase="app")
        longer.hadd(extra, 1, 19, phase="app")
        sim = BtsSimulator(params)
        assert sim.run(longer).total_seconds > sim.run(short).total_seconds


class TestAutomorphismRoute:
    def test_three_step_composition(self):
        from repro.core.noc import automorphism_route, pe_of_coefficient
        config = BtsConfig.paper()
        n = 1 << 17
        for i in (0, 12345, 99999):
            src, mid, dst = automorphism_route(i, 3, n, config)
            assert src == pe_of_coefficient(i, config)
            # vertical step: x unchanged; horizontal step: y unchanged
            assert mid[0] == src[0]
            assert mid[1] == dst[1]
