"""Tests for the op-to-pipeline cost model (Fig. 3a structure)."""

import pytest

from repro.ckks.params import CkksParams
from repro.core.compute_graph import OpCostModel, OpScheduler
from repro.core.config import BtsConfig
from repro.core.scheduler import Machine
from repro.workloads.trace import HEOp, OpKind


@pytest.fixture(scope="module")
def cost_ins2():
    return OpCostModel(CkksParams.ins2(), BtsConfig.paper())


class TestSliceGeometry:
    def test_full_level_slice_count(self, cost_ins2):
        """beta == dnum at the maximum level."""
        slices = cost_ins2.slices(39)
        assert len(slices) == 2
        assert all(src == 20 for src, _ in slices)

    def test_partial_level(self, cost_ins2):
        """At level 19 (20 limbs), one alpha=20 slice suffices."""
        slices = cost_ins2.slices(19)
        assert len(slices) == 1
        assert slices[0][0] == 20

    def test_ragged_tail_slice(self, cost_ins2):
        """Level 24 -> 25 limbs: a 20-limb slice plus a 5-limb tail."""
        slices = cost_ins2.slices(24)
        assert [src for src, _ in slices] == [20, 5]

    def test_dst_is_working_complement(self, cost_ins2):
        for level in (5, 24, 39):
            working = cost_ins2.params.k + level + 1
            for src, dst in cost_ins2.slices(level):
                assert src + dst == working

    def test_sources_cover_level(self, cost_ins2):
        for level in (0, 7, 39):
            assert sum(s for s, _ in cost_ins2.slices(level)) == level + 1


class TestByteAccounting:
    def test_ct_bytes_delegates(self, cost_ins2):
        assert cost_ins2.ct_bytes(10) == \
            cost_ins2.params.ct_bytes(10)

    def test_plain_bytes_compact(self, cost_ins2):
        """Compact plaintext storage: one word per coefficient."""
        assert cost_ins2.plain_bytes(5) == cost_ins2.plain_bytes(39)
        assert cost_ins2.plain_bytes(5) == cost_ins2.params.n * 8

    def test_limb_bytes(self, cost_ins2):
        assert cost_ins2.limb_bytes() == (1 << 17) * 8


class TestScheduledShapes:
    def _run(self, params, kind, level, overlap=True):
        config = BtsConfig.paper() if overlap \
            else BtsConfig.paper().without_bconv_overlap()
        cost = OpCostModel(params, config)
        machine = Machine.create()
        scheduler = OpScheduler(cost, machine)
        if kind is OpKind.HMULT:
            op = HEOp(OpKind.HMULT, level, (0, 1), 2)
            return scheduler.schedule_keyswitch(op, 0.0, 0.0), machine
        if kind is OpKind.HROT:
            op = HEOp(OpKind.HROT, level, (0,), 2, rotation=1)
            return scheduler.schedule_keyswitch(op, 0.0, 0.0), machine
        if kind is OpKind.PMULT:
            op = HEOp(OpKind.PMULT, level, (0,), 2, plain_operand=9)
            return scheduler.schedule_pmult(op, 0.0), machine
        raise AssertionError(kind)

    def test_hmult_evk_bytes(self):
        params = CkksParams.ins1()
        execution, _ = self._run(params, OpKind.HMULT, 27)
        assert execution.evk_bytes == params.evk_bytes(27)

    def test_overlap_shortens_op(self):
        """Fig. 9's BConv/iNTT overlap must help (or at least not hurt)."""
        params = CkksParams.ins1()
        config_on = BtsConfig.paper().with_hbm_bandwidth(20e12)
        config_off = config_on.without_bconv_overlap()
        t_on = self._with_config(params, config_on)
        t_off = self._with_config(params, config_off)
        assert t_on < t_off

    @staticmethod
    def _with_config(params, config):
        cost = OpCostModel(params, config)
        machine = Machine.create()
        scheduler = OpScheduler(cost, machine)
        op = HEOp(OpKind.HMULT, params.l, (0, 1), 2)
        return scheduler.schedule_keyswitch(op, 0.0, 0.0).duration

    def test_hrot_uses_noc(self):
        params = CkksParams.ins1()
        _, machine = self._run(params, OpKind.HROT, 27)
        assert machine.automorphism.busy_time > 0

    def test_hmult_does_not_use_noc_directly(self):
        params = CkksParams.ins1()
        _, machine = self._run(params, OpKind.HMULT, 27)
        assert machine.automorphism.busy_time == 0

    def test_pmult_expands_on_nttu(self):
        params = CkksParams.ins1()
        execution, machine = self._run(params, OpKind.PMULT, 27)
        # 28 limb-epochs of plaintext expansion
        epochs = machine.ntt.busy_time / (544 / 1.2e9)
        assert epochs == pytest.approx(28, abs=0.01)

    def test_temp_scales_with_level(self, cost_ins2):
        assert cost_ins2.keyswitch_temp_bytes(10) < \
            cost_ins2.keyswitch_temp_bytes(39)


class TestAutomorphismRoute:
    def test_three_step_composition(self):
        from repro.core.noc import automorphism_route, pe_of_coefficient
        config = BtsConfig.paper()
        n = 1 << 17
        for i in (0, 12345, 99999):
            src, mid, dst = automorphism_route(i, 3, n, config)
            assert src == pe_of_coefficient(i, config)
            # vertical step: x unchanged; horizontal step: y unchanged
            assert mid[0] == src[0]
            assert mid[1] == dst[1]
