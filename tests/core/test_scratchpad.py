"""Tests for the ct cache and scratchpad partitioning."""

import pytest

from repro.core.scratchpad import (
    CacheStats,
    CiphertextCache,
    ScratchpadPartition,
)


class TestCiphertextCache:
    def test_miss_then_hit(self):
        cache = CiphertextCache(100.0)
        assert not cache.access(1, 40.0, "HMult")
        assert cache.access(1, 40.0, "HMult")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = CiphertextCache(100.0)
        cache.insert(1, 40.0)
        cache.insert(2, 40.0)
        cache.access(1, 40.0, "x")       # 1 becomes MRU
        cache.insert(3, 40.0)            # evicts 2 (LRU)
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache

    def test_oversized_object_bypasses(self):
        cache = CiphertextCache(50.0)
        cache.insert(1, 40.0)
        evicted = cache.insert(2, 100.0)
        assert evicted == 0.0
        assert 2 not in cache
        assert 1 in cache  # bypass must not flush the cache

    def test_eviction_bytes_tracked(self):
        cache = CiphertextCache(100.0)
        cache.insert(1, 60.0)
        cache.insert(2, 60.0)
        assert cache.stats.evicted_bytes == pytest.approx(60.0)

    def test_invalidate(self):
        cache = CiphertextCache(100.0)
        cache.insert(1, 40.0)
        cache.invalidate(1)
        assert 1 not in cache
        cache.invalidate(99)  # no-op is fine

    def test_used_bytes(self):
        cache = CiphertextCache(100.0)
        cache.insert(1, 30.0)
        cache.insert(2, 20.0)
        assert cache.used_bytes == pytest.approx(50.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            CiphertextCache(-1.0)

    def test_zero_capacity_never_hits(self):
        cache = CiphertextCache(0.0)
        assert not cache.access(1, 10.0, "x")
        assert not cache.access(1, 10.0, "x")


class TestCacheStats:
    def test_hit_rate(self):
        stats = CacheStats()
        stats.record("HMult", True)
        stats.record("HMult", True)
        stats.record("HMult", False)
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.hit_rate_for("HMult") == pytest.approx(2 / 3)

    def test_per_kind_isolation(self):
        stats = CacheStats()
        stats.record("HMult", True)
        stats.record("HRot", False)
        assert stats.hit_rate_for("HMult") == 1.0
        assert stats.hit_rate_for("HRot") == 0.0

    def test_empty_defaults(self):
        stats = CacheStats()
        assert stats.hit_rate == 1.0
        assert stats.hit_rate_for("nothing") == 1.0


class TestPartition:
    def test_priority_order(self):
        """Section 6.2: temp first, then evk buffer, ct cache last."""
        p = ScratchpadPartition.plan(
            capacity_bytes=512.0, temp_peak_bytes=200.0, evk_bytes=400.0,
            evk_buffer_fraction=0.25)
        assert p.temp_bytes == 200.0
        assert p.evk_buffer_bytes == 100.0
        assert p.cache_bytes == 212.0

    def test_temp_larger_than_capacity(self):
        p = ScratchpadPartition.plan(100.0, 300.0, 50.0, 0.5)
        assert p.temp_bytes == 100.0
        assert p.evk_buffer_bytes == 0.0
        assert p.cache_bytes == 0.0

    def test_evk_bounded_by_remainder(self):
        p = ScratchpadPartition.plan(100.0, 90.0, 1000.0, 0.5)
        assert p.evk_buffer_bytes == pytest.approx(10.0)
        assert p.cache_bytes == 0.0

    def test_cache_never_negative(self):
        p = ScratchpadPartition.plan(10.0, 5.0, 100.0, 1.0)
        assert p.cache_bytes >= 0.0
