"""Tests for the BTS hardware configuration."""

import pytest

from repro.core.config import MIB, BtsConfig


class TestValidation:
    def test_grid_must_match_pe_count(self):
        with pytest.raises(ValueError):
            BtsConfig(n_pe=2048, pe_rows=32, pe_cols=32)

    def test_l_sub_positive(self):
        with pytest.raises(ValueError):
            BtsConfig(l_sub=0)

    def test_bandwidth_positive(self):
        with pytest.raises(ValueError):
            BtsConfig(hbm_bandwidth=0)


class TestPaperConfig:
    def test_defaults_match_section5(self):
        cfg = BtsConfig.paper()
        assert cfg.n_pe == 2048
        assert (cfg.pe_rows, cfg.pe_cols) == (32, 64)
        assert cfg.freq_hz == 1.2e9
        assert cfg.scratchpad_bytes == 512 * MIB
        assert cfg.hbm_bandwidth == 1e12
        assert cfg.l_sub == 4

    def test_epoch_cycles_n17(self):
        """Section 5.1: epoch = N log N / (2 n_PE) = 544 cycles at 2^17."""
        cfg = BtsConfig.paper()
        assert cfg.epoch_cycles(1 << 17) == pytest.approx(544.0)

    def test_epoch_seconds(self):
        cfg = BtsConfig.paper()
        assert cfg.epoch_seconds(1 << 17) == pytest.approx(544 / 1.2e9)

    def test_mmau_throughput(self):
        cfg = BtsConfig.paper()
        assert cfg.mmau_macs_per_second() == pytest.approx(
            2048 * 4 * 1.2e9)

    def test_ew_throughput(self):
        assert BtsConfig.paper().ew_ops_per_second() == pytest.approx(
            2048 * 0.6e9)


class TestVariants:
    def test_with_scratchpad(self):
        cfg = BtsConfig.paper().with_scratchpad(2 << 30)
        assert cfg.scratchpad_bytes == 2 << 30
        assert cfg.hbm_bandwidth == 1e12  # untouched

    def test_with_hbm(self):
        cfg = BtsConfig.paper().with_hbm_bandwidth(2e12)
        assert cfg.hbm_bandwidth == 2e12

    def test_without_overlap(self):
        assert not BtsConfig.paper().without_bconv_overlap().bconv_overlap

    def test_small_variant(self):
        cfg = BtsConfig.small(scratchpad_bytes=230 * MIB)
        assert not cfg.bconv_overlap
        assert cfg.scratchpad_bytes == 230 * MIB

    def test_frozen(self):
        with pytest.raises(Exception):
            BtsConfig.paper().n_pe = 4096
