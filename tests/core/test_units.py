"""Tests for the NTTU / BConvU / PE / HBM / NoC functional-unit models."""

import pytest

from repro.ckks.params import CkksParams
from repro.core.bconv_unit import BconvUnitModel
from repro.core.config import BtsConfig
from repro.core.hbm import HbmModel
from repro.core.noc import (
    BroadcastModel,
    PePeNocModel,
    automorphism_is_permutation,
    pe_of_coefficient,
)
from repro.core.ntt_unit import Ntt3dPlan, NttUnitModel
from repro.core.pe import ElementwiseModel, PeInventory

N17 = 1 << 17
CFG = BtsConfig.paper()


class TestNtt3dPlan:
    def test_paper_split(self):
        """Section 4.3: the cube is 2^6 x 2^5 x 2^6."""
        plan = Ntt3dPlan.for_ring(N17, CFG)
        assert (plan.nx, plan.ny, plan.nz) == (64, 32, 64)

    def test_butterflies_conserved(self):
        """3D decomposition covers exactly (N/2) log N butterflies."""
        plan = Ntt3dPlan.for_ring(N17, CFG)
        assert plan.butterflies_total() == (N17 // 2) * 17

    def test_rejects_small_ring(self):
        with pytest.raises(ValueError):
            Ntt3dPlan.for_ring(1 << 10, CFG)

    def test_six_stages_inside_pe(self):
        """N/n_PE = 64 residues per PE: log2(64) = 6 local stages."""
        plan = Ntt3dPlan.for_ring(N17, CFG)
        assert plan.nz == 64

    def test_exchange_bytes(self):
        plan = Ntt3dPlan.for_ring(N17, CFG)
        assert plan.exchange_bytes_per_step() == N17 * 8


class TestNttUnitModel:
    def test_epoch_time(self):
        model = NttUnitModel(CFG, N17)
        assert model.epoch_seconds == pytest.approx(544 / 1.2e9)

    def test_transform_scales_with_limbs(self):
        model = NttUnitModel(CFG, N17)
        assert model.transform_time(28) == pytest.approx(
            28 * model.epoch_seconds)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NttUnitModel(CFG, N17).transform_time(-1)


class TestBconvUnitModel:
    def test_mac_count(self):
        model = BconvUnitModel(CFG, N17)
        assert model.macs(28, 28) == 28 * 28 * N17

    def test_mmau_time_ins1(self):
        """INS-1 full BConv ~ 28x28 MACs over 8192 lanes: ~12.5 kcycles."""
        model = BconvUnitModel(CFG, N17)
        t = model.mmau_time(28, 28)
        cycles = t * CFG.freq_hz
        assert cycles == pytest.approx(28 * 28 * N17 / 8192)

    def test_overlap_offset(self):
        model = BconvUnitModel(CFG, N17)
        epoch = 1e-6
        assert model.overlap_start_offset(28, epoch) == pytest.approx(
            4e-6)

    def test_no_overlap_waits_for_full_intt(self):
        cfg = CFG.without_bconv_overlap()
        model = BconvUnitModel(cfg, N17)
        assert model.overlap_start_offset(28, 1e-6) == pytest.approx(28e-6)

    def test_partial_sum_traffic(self):
        model = BconvUnitModel(CFG, N17)
        # 28 sources in groups of 4 -> 7 reload rounds of the k-limb sums
        traffic = model.partial_sum_traffic_bytes(28, 28)
        assert traffic == 2 * 7 * 28 * N17 * 8


class TestElementwise:
    def test_time_linear_in_work(self):
        model = ElementwiseModel(CFG, N17)
        assert model.time(10, 2.0) == pytest.approx(2 * model.time(10, 1.0))

    def test_pe_inventory(self):
        inv = PeInventory.from_config(CFG)
        assert inv.scratchpad_bytes_per_pe == 512 * (1 << 20) // 2048


class TestHbm:
    def test_evk_load_time_ins1(self):
        """INS-1 evk at max level: 112MiB / 1TB/s ~ 117.4 us."""
        model = HbmModel(CFG)
        t = model.evk_load_time(CkksParams.ins1(), 27)
        assert t == pytest.approx(117.44e-6, rel=1e-3)

    def test_chunks_sum_to_evk(self):
        model = HbmModel(CFG)
        params = CkksParams.ins2()
        chunks = model.evk_chunks(params, params.l)
        assert sum(c.nbytes for c in chunks) == params.evk_bytes(params.l)
        assert [c.label for c in chunks] == [
            "evk.bx.P", "evk.bx.Q", "evk.ax.P", "evk.ax.Q"]

    def test_rejects_negative_transfer(self):
        with pytest.raises(ValueError):
            HbmModel(CFG).transfer_time(-1)


class TestNoc:
    def test_coefficient_mapping(self):
        assert pe_of_coefficient(0, CFG) == (0, 0)
        assert pe_of_coefficient(63, CFG) == (63, 0)
        assert pe_of_coefficient(64, CFG) == (0, 1)
        assert pe_of_coefficient(2048, CFG) == (0, 0)  # z-axis wraps

    @pytest.mark.parametrize("rotation", [1, 2, 5, 100])
    def test_automorphism_permutation_property(self, rotation):
        """Section 5.5: all residues of a PE share one destination PE."""
        assert automorphism_is_permutation(1 << 13, rotation,
                                           BtsConfig(n_pe=64, pe_rows=8,
                                                     pe_cols=8))

    def test_exchange_fits_epoch(self):
        """Section 5.1's pipelining needs transpose <= epoch."""
        assert PePeNocModel(CFG, N17).exchange_fits_epoch()

    def test_automorphism_time_scales(self):
        noc = PePeNocModel(CFG, N17)
        assert noc.automorphism_time(20) == pytest.approx(
            2 * noc.automorphism_time(10))

    def test_ot_twiddle_savings(self):
        """On-the-fly twiddling cuts storage to ~2/m of naive [52]."""
        br = BroadcastModel(CFG, N17)
        naive = br.naive_twiddle_bytes(28)
        ot = br.ot_twiddle_bytes(28)
        assert ot < naive / 100

    def test_local_bru_count(self):
        assert BroadcastModel(CFG, N17).local_brus() == 128
