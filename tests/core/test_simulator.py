"""Tests for the trace simulator against the paper's anchor behaviours."""

import pytest

from repro.ckks.params import CkksParams
from repro.core.config import MIB, BtsConfig
from repro.core.compute_graph import OpCostModel
from repro.core.simulator import BtsSimulator
from repro.workloads.trace import OpKind, Trace


@pytest.fixture(scope="module")
def ins1_sim():
    return BtsSimulator(CkksParams.ins1(), BtsConfig.paper())


def _single_op_trace(kind, level, rotation=0):
    trace = Trace(name="probe")
    a = trace.new_ct()
    b = trace.new_ct()
    if kind is OpKind.HMULT:
        trace.hmult(a, b, level)
    elif kind is OpKind.HROT:
        trace.hrot(a, rotation or 1, level)
    elif kind is OpKind.HADD:
        trace.hadd(a, b, level)
    elif kind is OpKind.HRESCALE:
        trace.hrescale(a, level)
    return trace


class TestSteadyStateHMult:
    def test_evk_load_bound_ins1(self, ins1_sim):
        """Section 3.3: HMult at L is bounded by the 117us evk stream."""
        t = ins1_sim.hmult_time()
        evk = CkksParams.ins1().evk_bytes(27) / 1e12
        assert t == pytest.approx(evk, rel=0.05)

    @pytest.mark.parametrize("params", CkksParams.paper_instances(),
                             ids=lambda p: p.name)
    def test_all_instances_near_evk_bound(self, params):
        sim = BtsSimulator(params)
        t = sim.hmult_time()
        evk = params.evk_bytes(params.l) / 1e12
        assert evk <= t <= evk * 1.25

    def test_lower_level_is_faster(self, ins1_sim):
        assert ins1_sim.hmult_time(level=5) < ins1_sim.hmult_time(level=27)

    def test_compute_bound_with_fast_memory(self):
        """With 10TB/s HBM the op becomes compute-bound (> evk time)."""
        params = CkksParams.ins1()
        sim = BtsSimulator(params,
                           BtsConfig.paper().with_hbm_bandwidth(10e12))
        t = sim.hmult_time()
        evk = params.evk_bytes(params.l) / 10e12
        assert t > evk * 1.5


class TestOpKinds:
    def test_hadd_much_cheaper_than_hmult(self, ins1_sim):
        """Section 6.3: non-evk ops run >10x faster than HMult/HRot
        (the on-chip/off-chip bandwidth ratio)."""
        add = ins1_sim.run(_single_op_trace(OpKind.HADD, 27))
        mult = ins1_sim.run(_single_op_trace(OpKind.HMULT, 27))
        add_t = add.op_seconds["HAdd"]
        mult_t = mult.op_seconds["HMult"]
        assert add_t < mult_t / 10

    def test_hrot_costs_like_hmult(self, ins1_sim):
        rot = ins1_sim.run(_single_op_trace(OpKind.HROT, 27))
        mult = ins1_sim.run(_single_op_trace(OpKind.HMULT, 27))
        ratio = rot.op_seconds["HRot"] / mult.op_seconds["HMult"]
        assert 0.8 < ratio < 1.2

    def test_rescale_has_no_evk(self, ins1_sim):
        rep = ins1_sim.run(_single_op_trace(OpKind.HRESCALE, 27))
        assert rep.evk_bytes == 0.0


class TestCacheBehaviour:
    def test_cold_miss_then_hits(self, ins1_sim):
        trace = Trace(name="reuse")
        a, b = trace.new_ct(), trace.new_ct()
        c = trace.hmult(a, b, 20)
        trace.hmult(c, a, 20)
        trace.hmult(c, a, 20)
        rep = ins1_sim.run(trace)
        assert rep.cache.misses == 2          # a and b, cold
        assert rep.cache.hits >= 3            # c and a reused

    def test_tiny_scratchpad_thrashes(self):
        params = CkksParams.ins1()
        big = BtsSimulator(params, BtsConfig.paper())
        small = BtsSimulator(
            params, BtsConfig.paper().with_scratchpad(260 * MIB))
        trace_a = _chain_trace(12)
        trace_b = _chain_trace(12)
        rep_big = big.run(trace_a)
        rep_small = small.run(trace_b)
        assert rep_small.cache.hit_rate <= rep_big.cache.hit_rate
        assert rep_small.total_seconds >= rep_big.total_seconds

    def test_partition_reports(self, ins1_sim):
        part = ins1_sim.plan_partition()
        assert part.temp_bytes > 0
        assert part.cache_bytes > 0
        assert part.capacity_bytes == 512 * MIB


def _chain_trace(length):
    trace = Trace(name="chain")
    ct = trace.new_ct()
    other = trace.new_ct()
    for i in range(length):
        ct = trace.hmult(ct, other, 27)
        # keep `other` live so it stays cacheable
        trace.hadd(ct, other, 27)
    return trace


class TestTempDataModel:
    def test_table4_ordering(self):
        """Temp data must order INS-1 < INS-2 < INS-3 (Table 4)."""
        temps = [OpCostModel(p, BtsConfig.paper())
                 .keyswitch_temp_bytes(p.l)
                 for p in CkksParams.paper_instances()]
        assert temps[0] < temps[1] < temps[2]

    def test_table4_magnitudes(self):
        """Within ~25% of the paper's 183 / 304 / 365 MB."""
        paper = [183.0, 304.0, 365.0]
        for params, want in zip(CkksParams.paper_instances(), paper):
            got = OpCostModel(params, BtsConfig.paper()) \
                .keyswitch_temp_bytes(params.l) / MIB
            assert abs(got - want) / want < 0.25


class TestUtilization:
    def test_hbm_saturates_on_keyswitch_stream(self, ins1_sim):
        trace = _chain_trace(20)
        rep = ins1_sim.run(trace)
        assert rep.utilization["HBM"] > 0.9

    def test_nttu_utilization_during_hmult(self, ins1_sim):
        """Fig. 8: NTTU busy ~76% of an HMult; allow a generous band."""
        trace = _chain_trace(20)
        rep = ins1_sim.run(trace)
        assert 0.4 < rep.utilization["NTTU"] < 0.95


class TestReports:
    def test_op_accounting(self, ins1_sim):
        trace = _chain_trace(5)
        rep = ins1_sim.run(trace)
        assert rep.op_counts["HMult"] == 5
        assert rep.op_counts["HAdd"] == 5
        assert rep.total_seconds > 0

    def test_executions_recorded(self, ins1_sim):
        rep = ins1_sim.run(_chain_trace(3))
        assert len(rep.executions) == 6
        assert all(e.end >= e.start for e in rep.executions)

    def test_event_logging_mode(self, ins1_sim):
        rep = ins1_sim.run(_single_op_trace(OpKind.HMULT, 27),
                           log_events=True)
        assert rep.total_seconds > 0
