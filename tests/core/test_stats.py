"""Tests for timeline collection and utilization series (Fig. 8 tooling)."""

import pytest

from repro.ckks.params import CkksParams
from repro.core.config import BtsConfig
from repro.core.scheduler import Machine, Resource
from repro.core.simulator import BtsSimulator
from repro.core.stats import (
    busy_bytes,
    collect_timeline,
    format_timeline,
    utilization_series,
)
from repro.workloads.trace import Trace


def _logged_machine():
    m = Machine.create(log_events=True)
    m.ntt.reserve(1e-6, label="iNTT.d2")
    m.hbm.reserve(2e-6, label="load evk.bx.P", payload_bytes=1000.0)
    m.ntt.reserve(1e-6, label="NTT.d2")
    return m


class TestTimeline:
    def test_rows_sorted_by_start(self):
        rows = collect_timeline(_logged_machine())
        starts = [r.start_ns for r in rows]
        assert starts == sorted(starts)

    def test_row_contents(self):
        rows = collect_timeline(_logged_machine())
        labels = {r.label for r in rows}
        assert {"iNTT.d2", "load evk.bx.P", "NTT.d2"} <= labels

    def test_format_output(self):
        text = format_timeline(collect_timeline(_logged_machine()))
        assert "iNTT.d2" in text
        assert "resource" in text.splitlines()[0]

    def test_format_truncation(self):
        m = Machine.create(log_events=True)
        for i in range(30):
            m.ntt.reserve(1e-9, label=f"s{i}")
        text = format_timeline(collect_timeline(m), limit=5)
        assert "more rows" in text


class TestUtilizationSeries:
    def test_full_busy(self):
        r = Resource("x", log_events=True)
        r.reserve(10.0)
        series = utilization_series(r, window=10.0, buckets=5)
        assert len(series) == 5
        assert all(u == pytest.approx(1.0) for _, u in series)

    def test_half_busy(self):
        r = Resource("x", log_events=True)
        r.reserve(5.0)
        series = utilization_series(r, window=10.0, buckets=10)
        first_half = [u for t, u in series if t <= 5.0]
        second_half = [u for t, u in series if t > 5.0]
        assert all(u == pytest.approx(1.0) for u in first_half)
        assert all(u == pytest.approx(0.0) for u in second_half)

    def test_empty_window(self):
        r = Resource("x", log_events=True)
        assert utilization_series(r, window=0.0) == []

    def test_busy_bytes(self):
        r = Resource("x", log_events=True)
        r.reserve(1.0, payload_bytes=100.0)
        r.reserve(1.0, payload_bytes=50.0)
        assert busy_bytes(r) == pytest.approx(150.0)


class TestFig8Integration:
    def test_hmult_timeline_structure(self):
        """A logged INS-1 HMult shows the Fig. 8 stage sequence."""
        sim = BtsSimulator(CkksParams.ins1(), BtsConfig.paper())
        trace = Trace(name="fig8")
        a, b = trace.new_ct(), trace.new_ct()
        trace.hmult(a, b, 27)
        machine_rows = None
        # re-run with logging through the public API
        rep = sim.run(trace, log_events=True)
        assert rep.total_seconds > 0
        # four evk chunks must be present in HBM traffic accounting
        assert rep.evk_bytes == CkksParams.ins1().evk_bytes(27)
