"""Tests for resource reservation and the scratchpad profile."""

import pytest

from repro.core.scheduler import Interval, Machine, Resource, \
    ScratchpadProfile


class TestResource:
    def test_fifo_serialization(self):
        r = Resource("x")
        s1, e1 = r.reserve(1.0)
        s2, e2 = r.reserve(2.0)
        assert (s1, e1) == (0.0, 1.0)
        assert (s2, e2) == (1.0, 3.0)

    def test_earliest_respected(self):
        r = Resource("x")
        start, end = r.reserve(1.0, earliest=5.0)
        assert (start, end) == (5.0, 6.0)

    def test_earliest_behind_queue(self):
        r = Resource("x")
        r.reserve(4.0)
        start, _ = r.reserve(1.0, earliest=1.0)
        assert start == 4.0

    def test_busy_time_accumulates(self):
        r = Resource("x")
        r.reserve(1.5)
        r.reserve(0.5)
        assert r.busy_time == pytest.approx(2.0)

    def test_zero_duration_no_advance(self):
        r = Resource("x")
        r.reserve(0.0, earliest=3.0)
        assert r.free_at == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Resource("x").reserve(-1.0)

    def test_utilization(self):
        r = Resource("x")
        r.reserve(2.0)
        assert r.utilization(0.0, 4.0) == pytest.approx(0.5)
        assert r.utilization(0.0, 0.0) == 0.0

    def test_event_logging(self):
        r = Resource("x", log_events=True)
        r.reserve(1.0, label="stage-a", payload_bytes=100.0)
        assert r.events == [Interval("stage-a", 0.0, 1.0, 100.0)]
        assert r.events[0].duration == pytest.approx(1.0)

    def test_no_logging_by_default(self):
        r = Resource("x")
        r.reserve(1.0, label="stage-a")
        assert r.events == []


class TestMachine:
    def test_all_resources_present(self):
        m = Machine.create()
        names = {r.name for r in m.all_resources()}
        assert names == {"NTTU", "MMAU", "BConv-ModMult", "EW", "HBM",
                         "NoC-automorphism"}

    def test_horizon(self):
        m = Machine.create()
        m.ntt.reserve(1.0)
        m.hbm.reserve(3.0)
        assert m.horizon == pytest.approx(3.0)

    def test_utilizations_dict(self):
        m = Machine.create()
        m.ntt.reserve(1.0)
        utils = m.utilizations(0.0, 2.0)
        assert utils["NTTU"] == pytest.approx(0.5)
        assert utils["HBM"] == 0.0


class TestDependencyOrder:
    """Reservation timelines must respect dependencies and FIFO order."""

    def test_never_starts_before_earliest(self):
        r = Resource("x", log_events=True)
        starts = [r.reserve(1.0, earliest=e)[0]
                  for e in (0.0, 5.0, 2.0, 7.5)]
        for start, earliest in zip(starts, (0.0, 5.0, 2.0, 7.5)):
            assert start >= earliest

    def test_fifo_never_reorders(self):
        """A later request never starts before an earlier one ended."""
        r = Resource("x", log_events=True)
        for duration, earliest in ((2.0, 0.0), (1.0, 0.5), (3.0, 0.0),
                                   (0.5, 10.0), (1.0, 0.0)):
            r.reserve(duration, earliest=earliest)
        for prev, cur in zip(r.events, r.events[1:]):
            assert cur.start >= prev.end

    def test_timeline_intervals_never_overlap(self):
        r = Resource("x", log_events=True)
        for i in range(10):
            r.reserve(0.5 + 0.1 * i, earliest=0.3 * i)
        spans = sorted((e.start, e.end) for e in r.events)
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert s1 >= e0

    def test_reservation_sequence_deterministic(self):
        """The same request sequence yields the same timeline, twice."""
        requests = [(1.5, 0.0), (0.5, 3.0), (2.0, 1.0), (0.0, 9.0),
                    (1.0, 2.5)]

        def run():
            r = Resource("x", log_events=True)
            return [r.reserve(d, earliest=e) for d, e in requests], \
                r.free_at, r.busy_time

        assert run() == run()


class TestScratchpadProfile:
    def test_peak(self):
        p = ScratchpadProfile()
        p.allocate(0.0, 100.0)
        p.allocate(1.0, 50.0)
        p.release(2.0, 100.0)
        assert p.peak() == pytest.approx(150.0)

    def test_series_ordering(self):
        p = ScratchpadProfile()
        p.allocate(2.0, 10.0)
        p.allocate(0.0, 5.0)
        series = p.series()
        assert [t for t, _ in series] == [0.0, 2.0]
        assert series[-1][1] == pytest.approx(15.0)

    def test_empty_profile(self):
        assert ScratchpadProfile().peak() == 0.0
