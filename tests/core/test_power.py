"""Tests for the Table 3 area/power model and EDAP."""

import pytest

from repro.core.config import MIB, BtsConfig
from repro.core.power import (
    AreaPowerModel,
    CHIP_COMPONENTS,
    PE_COMPONENTS,
)


@pytest.fixture(scope="module")
def model():
    return AreaPowerModel(BtsConfig.paper())


class TestTable3:
    def test_pe_area_matches_paper(self, model):
        """Table 3: one PE is 154,863 um^2 (component sum)."""
        assert model.pe_area_um2() == pytest.approx(154_864, rel=1e-3)

    def test_pe_power_matches_paper(self, model):
        """Table 3: one PE peaks at 35.75 mW."""
        assert model.pe_power_mw() == pytest.approx(35.76, rel=1e-2)

    def test_chip_area_matches_paper(self, model):
        """Table 3: total 373.6 mm^2."""
        assert model.chip_area_mm2() == pytest.approx(373.6, rel=5e-3)

    def test_chip_power_matches_paper(self, model):
        """Table 3: total peak power 163.2 W."""
        assert model.chip_peak_power_w() == pytest.approx(163.2, rel=5e-3)

    def test_2048_pes_area(self, model):
        """Table 3: the PE array is 317.2 mm^2."""
        pes_mm2 = model.pe_area_um2() * 2048 / 1e6
        assert pes_mm2 == pytest.approx(317.2, rel=1e-2)

    def test_component_tables_complete(self):
        assert set(PE_COMPONENTS) >= {"scratchpad_sram", "nttu", "mmau"}
        assert set(CHIP_COMPONENTS) >= {"hbm_stacks", "inter_pe_noc"}


class TestScratchpadScaling:
    def test_area_scales_with_capacity(self):
        big = AreaPowerModel(BtsConfig.paper().with_scratchpad(1 << 30))
        small = AreaPowerModel(BtsConfig.paper().with_scratchpad(
            256 * MIB))
        assert big.chip_area_mm2() > small.chip_area_mm2()

    def test_non_sram_components_fixed(self):
        big = AreaPowerModel(BtsConfig.paper().with_scratchpad(1 << 30))
        assert big.pe_component_table()["nttu"] == PE_COMPONENTS["nttu"]

    def test_baseline_unscaled(self, model):
        table = model.pe_component_table()
        assert table["scratchpad_sram"] == PE_COMPONENTS["scratchpad_sram"]


class TestEnergy:
    def test_energy_monotone_in_utilization(self, model):
        idle = model.energy_joules(1.0, {})
        busy = model.energy_joules(1.0, {"NTTU": 1.0, "MMAU": 1.0,
                                         "HBM": 1.0, "EW": 1.0})
        assert busy > idle > 0

    def test_idle_floor(self, model):
        """Idle power is a nonzero fraction of peak (leakage)."""
        idle_power = model.energy_joules(1.0, {})
        assert idle_power > 0.1 * model.chip_peak_power_w() * 0.5

    def test_energy_linear_in_time(self, model):
        utils = {"NTTU": 0.5, "HBM": 0.9}
        assert model.energy_joules(2.0, utils) == pytest.approx(
            2 * model.energy_joules(1.0, utils))

    def test_edap_composition(self, model):
        utils = {"NTTU": 0.5}
        edap = model.edap(2.0, utils)
        assert edap == pytest.approx(
            model.energy_joules(2.0, utils) * 2.0 * model.chip_area_mm2())
